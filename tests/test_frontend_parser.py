"""Tests for the Fortran parser and symbol tables."""

import pytest

from repro.compiler.frontend import fast as F
from repro.compiler.frontend.parser import ParseError, parse

MM_SRC = """
      PROGRAM MM
      PARAMETER (N = 8)
      REAL*8 A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          C(I,J) = 0.0
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      END
"""


def test_parse_program_structure():
    prog = parse(MM_SRC)
    assert len(prog.units) == 1
    unit = prog.main
    assert unit.kind == "program"
    assert unit.name == "MM"
    assert len(unit.body) == 1
    assert isinstance(unit.body[0], F.Do)


def test_symbol_table_arrays_and_params():
    unit = parse(MM_SRC).main
    a = unit.symtab.lookup("A")
    assert a.is_array and a.dims == [(1, 8), (1, 8)]
    assert a.ftype == "REAL*8"
    n = unit.symtab.lookup("N")
    assert n.is_param and n.param_value == 8
    i = unit.symtab.lookup("I")
    assert not i.is_array and i.ftype == "INTEGER"


def test_column_major_flattening():
    unit = parse(MM_SRC).main
    a = unit.symtab.lookup("A")
    assert a.multipliers() == [1, 8]
    assert a.flatten([1, 1]) == 0
    assert a.flatten([2, 1]) == 1
    assert a.flatten([1, 2]) == 8
    assert a.size == 64


def test_nested_do_structure():
    unit = parse(MM_SRC).main
    outer = unit.body[0]
    assert outer.var == "I"
    inner = outer.body[0]
    assert inner.var == "J"
    assert isinstance(inner.body[0], F.Assign)
    assert isinstance(inner.body[1], F.Do)


def test_do_with_step_and_label():
    src = """
      PROGRAM P
      REAL*8 A(20)
      DO 10 I = 1, 11, 2
        A(I) = 1.0
10    CONTINUE
      END
"""
    unit = parse(src).main
    loop = unit.body[0]
    assert isinstance(loop, F.Do)
    assert loop.label == "10"
    assert isinstance(loop.step, F.Num) and loop.step.value == 2


def test_parallel_directive_marks_loop():
    src = """
      PROGRAM P
      REAL*8 A(4)
CSRD$ PARALLEL
      DO I = 1, 4
        A(I) = I
      ENDDO
      END
"""
    unit = parse(src).main
    assert unit.body[0].parallel is True


def test_if_then_else():
    src = """
      PROGRAM P
      INTEGER I
      IF (I .LT. 5) THEN
        I = 1
      ELSE IF (I .EQ. 5) THEN
        I = 2
      ELSE
        I = 3
      ENDIF
      END
"""
    unit = parse(src).main
    node = unit.body[0]
    assert isinstance(node, F.If)
    assert isinstance(node.cond, F.RelOp) and node.cond.op == "<"
    assert len(node.elifs) == 1
    assert len(node.orelse) == 1


def test_one_line_logical_if():
    src = """
      PROGRAM P
      INTEGER I
      IF (I .GT. 0) I = 0
      END
"""
    unit = parse(src).main
    node = unit.body[0]
    assert isinstance(node, F.If)
    assert isinstance(node.then[0], F.Assign)
    assert node.orelse == []


def test_subroutine_and_call():
    src = """
      PROGRAM P
      REAL*8 A(10)
      CALL INIT(A)
      END

      SUBROUTINE INIT(X)
      REAL*8 X(10)
      DO I = 1, 10
        X(I) = 0.0
      ENDDO
      END
"""
    prog = parse(src)
    assert len(prog.units) == 2
    call = prog.main.body[0]
    assert isinstance(call, F.Call) and call.name == "INIT"
    sub = prog.unit("INIT")
    assert sub.args == ["X"]
    assert sub.symtab.lookup("X").is_array


def test_intrinsics_parse():
    src = """
      PROGRAM P
      REAL*8 X
      X = SQRT(2.0) + COS(X) * MOD(5, 2)
      END
"""
    unit = parse(src).main
    rhs = unit.body[0].rhs
    names = [e.name for e in F.walk_exprs(rhs) if isinstance(e, F.Intrinsic)]
    assert set(names) == {"SQRT", "COS", "MOD"}


def test_undeclared_subscripted_name_rejected():
    src = """
      PROGRAM P
      X = Q(3) + 1
      END
"""
    with pytest.raises(ParseError, match="not declared as an array"):
        parse(src)


def test_operator_precedence():
    src = """
      PROGRAM P
      REAL*8 X
      X = 1 + 2 * 3 ** 2
      END
"""
    rhs = parse(src).main.body[0].rhs
    # 1 + (2 * (3 ** 2))
    assert rhs.op == "+"
    assert rhs.right.op == "*"
    assert rhs.right.right.op == "**"


def test_unary_minus():
    src = """
      PROGRAM P
      REAL*8 X
      X = -X + (-2)
      END
"""
    rhs = parse(src).main.body[0].rhs
    assert isinstance(rhs.left, F.UnOp)


def test_parameter_expression_folding():
    src = """
      PROGRAM P
      PARAMETER (N = 4, M = 2*N + 1)
      REAL*8 A(M)
      END
"""
    unit = parse(src).main
    assert unit.symtab.lookup("M").param_value == 9
    assert unit.symtab.lookup("A").dims == [(1, 9)]


def test_print_statement():
    src = """
      PROGRAM P
      REAL*8 X
      PRINT *, 'value', X
      END
"""
    stmt = parse(src).main.body[0]
    assert isinstance(stmt, F.PrintStmt)
    assert isinstance(stmt.items[0], F.Str)


def test_goto_rejected():
    src = """
      PROGRAM P
      GOTO 10
      END
"""
    with pytest.raises(ParseError, match="GOTO"):
        parse(src)


def test_implicit_none_enforced():
    src = """
      PROGRAM P
      IMPLICIT NONE
      X = 1
      END
"""
    with pytest.raises(Exception):
        parse(src)


def test_dimension_statement():
    src = """
      PROGRAM P
      DIMENSION A(5,5)
      REAL*8 A
      END
"""
    unit = parse(src).main
    a = unit.symtab.lookup("A")
    assert a.dims == [(1, 5), (1, 5)]


def test_explicit_bounds():
    src = """
      PROGRAM P
      REAL*8 A(0:9)
      END
"""
    a = parse(src).main.symtab.lookup("A")
    assert a.dims == [(0, 9)]
    assert a.size == 10
