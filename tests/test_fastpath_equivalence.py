"""The batched fast path must be *bit-identical* to the stepwise oracle.

Every scenario here runs twice — ``fast_path=False`` (the stepwise
reference, event-per-hop/chunk) and ``fast_path=True`` (analytic charging,
see :mod:`repro.vbus.fastpath`) — and asserts ``==`` on simulated end
times, per-transfer receipts, hardware counters, and per-channel usage.
No tolerances: the fast path reproduces the oracle's floating-point
arithmetic operation by operation.
"""

from dataclasses import replace

import pytest

from repro.sim import AllOf, Simulator
from repro.vbus.cluster import Cluster
from repro.vbus.params import VBUS_SKWP

#: Keys that only exist (or only count) on the fast path.
def _is_fast_key(key):
    return key.startswith("fast_")


def _params(rows, cols, fast):
    return replace(VBUS_SKWP, mesh=(rows, cols), fast_path=fast)


def _snapshot(cluster, records):
    stats = {k: v for k, v in cluster.stats().items() if not _is_fast_key(k)}
    channels = {
        key: (ch.messages, ch.busy_s)
        for key, ch in cluster.mesh.channels.items()
    }
    return {
        "now": cluster.sim.now,
        "records": sorted(records),
        "stats": stats,
        "channels": channels,
    }


def _run(params, scenario):
    """Run ``scenario(cluster, records)`` -> list of (name, generator)."""
    sim = Simulator()
    cluster = Cluster(sim, params)
    records = []

    def wrap(name, gen):
        def body():
            out = yield from gen
            end = sim.now
            if out is not None and hasattr(out, "total_s"):
                out = (out.nbytes, out.elements, out.contiguous,
                       out.cpu_s, out.total_s)
            records.append((name, end, out))

        return body()

    for name, gen in scenario(cluster, records):
        sim.process(wrap(name, gen), name=name)
    sim.run()
    return _snapshot(cluster, records)


def assert_equivalent(rows, cols, scenario):
    slow = _run(_params(rows, cols, False), scenario)
    fast = _run(_params(rows, cols, True), scenario)
    assert fast["now"] == slow["now"]
    assert fast["records"] == slow["records"]
    assert fast["stats"] == slow["stats"]
    assert fast["channels"] == slow["channels"]


MESHES = [(2, 2), (2, 4)]


# ---------------------------------------------------------------------------
# Micro scenarios
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("rows,cols", MESHES)
def test_contiguous_dma_transfer(rows, cols):
    def scenario(cluster, records):
        n = cluster.nprocs
        return [
            ("dma", cluster.transfer(0, n - 1, 64 * 1024, contiguous=True)),
        ]

    assert_equivalent(rows, cols, scenario)


@pytest.mark.parametrize("rows,cols", MESHES)
def test_strided_pio_transfer(rows, cols):
    def scenario(cluster, records):
        return [
            ("pio", cluster.transfer(
                0, 1, 8 * 1024, elements=1024, contiguous=False)),
        ]

    assert_equivalent(rows, cols, scenario)


@pytest.mark.parametrize("rows,cols", MESHES)
def test_concurrent_staggered_transfers(rows, cols):
    """Overlapping transfers that contend for channels and DMA engines."""

    def scenario(cluster, records):
        n = cluster.nprocs
        sim = cluster.sim

        def staggered(delay, src, dst, nbytes, contiguous):
            yield sim.timeout(delay)
            r = yield from cluster.transfer(
                src, dst, nbytes, contiguous=contiguous
            )
            return r

        jobs = []
        for i in range(n):
            jobs.append((
                f"t{i}",
                staggered(i * 3e-6, i, (i + 1) % n, 16 * 1024, True),
            ))
            jobs.append((
                f"s{i}",
                staggered(i * 5e-6, i, (i + 2) % n, 2048, False),
            ))
        return jobs

    assert_equivalent(rows, cols, scenario)


@pytest.mark.parametrize("rows,cols", MESHES)
def test_broadcast_freezes_inflight_body(rows, cols):
    """A hardware broadcast freezes a unicast mid-body; the demoted fast
    leg must finish at the oracle's exact time."""

    def scenario(cluster, records):
        sim = cluster.sim

        def bcast():
            # 64 KiB at 50 MB/s DMA rate gives a ~1.3 ms body; freeze at
            # 0.5 ms lands squarely inside it.
            yield sim.timeout(0.5e-3)
            r = yield from cluster.hw_broadcast(1, 4096)
            return r

        return [
            ("long", cluster.transfer(0, cluster.nprocs - 1, 64 * 1024)),
            ("bcast", bcast()),
        ]

    assert_equivalent(rows, cols, scenario)


@pytest.mark.parametrize("rows,cols", MESHES)
def test_direct_freeze_during_head_phase(rows, cols):
    """A freeze landing inside the single-hop head window (router-delay
    wide) exercises the head-remainder demotion branch."""

    def scenario(cluster, records):
        sim = cluster.sim
        rd = cluster.params.link.router_delay_s
        # Adjacent ranks: one hop, claimed right after software setup
        # (6 us) + DMA programming (2 us).
        t_claim = (
            cluster.params.nic.setup_shared_queue_s
            + cluster.params.nic.dma_setup_s
        )

        def freezer():
            yield sim.timeout(t_claim + rd / 2)
            cluster.domain.freeze()
            yield sim.timeout(7e-6)
            cluster.domain.thaw()

        return [
            ("adj", cluster.transfer(0, 1, 32 * 1024)),
            ("freezer", freezer()),
        ]

    assert_equivalent(rows, cols, scenario)


@pytest.mark.parametrize("rows,cols", MESHES)
def test_rma_put_get_overlap(rows, cols):
    """Split-phase RMA legs (contiguous DMA + strided PIO) overlapping,
    with completions awaited fence-style."""

    def scenario(cluster, records):
        sim = cluster.sim
        n = cluster.nprocs

        def origin(rank):
            pending = []
            cpu, done = yield from cluster.rma_start(
                rank, (rank + 1) % n, 4096, contiguous=True
            )
            pending.append(done)
            cpu, done = yield from cluster.rma_start(
                rank, (rank + 2) % n, 1024, elements=128,
                contiguous=False, direction="get",
            )
            pending.append(done)
            cpu, done = yield from cluster.rma_start(rank, rank, 512)
            pending.append(done)
            live = [p for p in pending if not p.triggered]
            if live:
                yield AllOf(sim, live)
            return sim.now

        return [(f"rma{r}", origin(r)) for r in range(n)]

    assert_equivalent(rows, cols, scenario)


# ---------------------------------------------------------------------------
# Whole-program equivalence
# ---------------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("granularity", ["fine", "middle", "coarse"])
def test_program_equivalence_mm(granularity):
    from repro.compiler.pipeline import compile_source
    from repro.runtime.executor import run_program
    from repro.workloads import mm

    prog = compile_source(mm.source(64), nprocs=4, granularity=granularity)
    slow = run_program(
        prog, cluster_params=_params(2, 2, False), execute=False
    )
    fast = run_program(
        prog, cluster_params=_params(2, 2, True), execute=False
    )
    assert fast.total_s == slow.total_s
    fast_hw = {k: v for k, v in fast.hw.items() if not _is_fast_key(k)}
    slow_hw = {k: v for k, v in slow.hw.items() if not _is_fast_key(k)}
    assert fast_hw == slow_hw


@pytest.mark.slow
def test_program_equivalence_cffzinit():
    from repro.compiler.pipeline import compile_source
    from repro.runtime.executor import run_program
    from repro.workloads import cffzinit

    prog = compile_source(cffzinit.source(8), nprocs=4, granularity="fine")
    slow = run_program(
        prog, cluster_params=_params(2, 2, False), execute=False
    )
    fast = run_program(
        prog, cluster_params=_params(2, 2, True), execute=False
    )
    assert fast.total_s == slow.total_s


# ---------------------------------------------------------------------------
# Fast-path bookkeeping
# ---------------------------------------------------------------------------
def test_fast_path_actually_engages():
    """The fast configuration must actually charge legs analytically."""
    params = _params(2, 2, True)
    sim = Simulator()
    cluster = Cluster(sim, params)
    proc = sim.process(cluster.transfer(0, 1, 4096))
    sim.run(until=proc)
    assert cluster.mesh.fast_legs == 1
    assert cluster.mesh.fast_fallbacks == 0


def test_stepwise_mode_never_uses_fast_legs():
    params = _params(2, 2, False)
    sim = Simulator()
    cluster = Cluster(sim, params)
    proc = sim.process(cluster.transfer(0, 1, 4096))
    sim.run(until=proc)
    assert cluster.mesh.fast_legs == 0


# ---------------------------------------------------------------------------
# Fault plans and the fast path
# ---------------------------------------------------------------------------
def _fault_params(rows, cols, fast):
    from repro.faults import FaultPlan, FaultSpec

    plan = FaultPlan(
        seed=17,
        specs=(
            FaultSpec(kind="drop", rate=0.05),
            FaultSpec(kind="delay", rate=0.25, delay_s=2e-6),
        ),
    )
    return replace(_params(rows, cols, fast), faults=plan)


@pytest.mark.parametrize("rows,cols", MESHES)
def test_fault_plan_fast_vs_slow_equivalent(rows, cols):
    """With an active plan the fast config must replay faults identically.

    It does so by demoting itself wholesale (every leg goes stepwise), so
    fast and slow runs are the *same* injection sequence — end times,
    receipts, counters, and fault statistics all match exactly.
    """

    def scenario(cluster, records):
        return [
            ("a", cluster.transfer(0, 1, 4096)),
            ("b", cluster.transfer(1, 0, 2048)),
            ("c", cluster.transfer(0, rows * cols - 1, 8192)),
        ]

    slow = _run(_fault_params(rows, cols, False), scenario)
    fast = _run(_fault_params(rows, cols, True), scenario)
    assert fast["now"] == slow["now"]
    assert fast["records"] == slow["records"]
    assert fast["stats"] == slow["stats"]  # includes fault_* counters
    assert fast["channels"] == slow["channels"]
    assert slow["stats"]["fault_dropped_flits"] > 0


def test_active_fault_plan_demotes_every_leg():
    """fast_path=True + active plan => zero fast legs, fallbacks counted."""
    params = _fault_params(2, 2, True)
    sim = Simulator()
    cluster = Cluster(sim, params)
    proc = sim.process(cluster.transfer(0, 1, 4096))
    sim.run(until=proc)
    assert cluster.mesh.fast_legs == 0
    assert cluster.mesh.fast_fallbacks >= 1


def test_empty_fault_plan_keeps_fast_path():
    """A plan with no specs is inactive: no injector, fast path engages."""
    from repro.faults import FaultPlan

    params = replace(_params(2, 2, True), faults=FaultPlan(seed=3))
    sim = Simulator()
    cluster = Cluster(sim, params)
    assert cluster.injector is None
    proc = sim.process(cluster.transfer(0, 1, 4096))
    sim.run(until=proc)
    assert cluster.mesh.fast_legs == 1
