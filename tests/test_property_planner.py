"""Properties of the communication planner on randomly shaped programs.

Invariants checked (for arbitrary write strides/offsets/rank counts):

1. fine-grain collect transfers cover exactly the union of the ranks'
   write sets (no byte missing, no byte invented);
2. at any grain, each rank's collect transfers cover at least its write
   set, and inflated extras never overlap another rank's transfers;
3. scatter transfers cover every exposed read;
4. the executed program's arrays equal the sequential run's.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import compile_source
from repro.compiler.postpass.spmd import ParRegion, iter_regions
from repro.runtime.executor import run_program, run_sequential


def _program(stride, off, n, two_phase):
    size = stride * n + off + stride
    phase2 = (
        f"        A({stride}*(I-1)+{off}+2) = B(I) - 1.0\n"
        if two_phase and stride >= 2
        else ""
    )
    return f"""
      PROGRAM PROP
      PARAMETER (N = {n}, NS = {size})
      REAL*8 A(NS), B(N)
      INTEGER I
      DO I = 1, N
        B(I) = DBLE(I)
      ENDDO
      DO I = 1, N
        A({stride}*(I-1)+{off}+1) = B(I) * 2.0
{phase2}      ENDDO
      END
"""


def _masks(prog, region, array):
    plan = prog.plans[region.region_id]
    aplan = plan.arrays[array]
    size = prog.env.sizes[array]
    per_rank = {}
    for r, ts in aplan.collect.items():
        m = np.zeros(size, dtype=bool)
        for t in ts:
            m[t.indices()] = True
        per_rank[r] = m
    return aplan, per_rank


@settings(max_examples=40, deadline=None)
@given(
    stride=st.integers(1, 4),
    off=st.integers(0, 3),
    n=st.integers(8, 40),
    nprocs=st.integers(2, 4),
    grain=st.sampled_from(["fine", "middle", "coarse"]),
    two_phase=st.booleans(),
)
def test_property_collect_coverage_and_disjointness(
    stride, off, n, nprocs, grain, two_phase
):
    src = _program(stride, off, n, two_phase)
    prog = compile_source(src, nprocs=nprocs, granularity=grain)
    regions = [
        r for r in iter_regions(prog.regions) if isinstance(r, ParRegion)
    ]
    write_region = regions[-1]
    aplan, per_rank = _masks(prog, write_region, "A")
    size = prog.env.sizes["A"]

    # Exact per-rank write sets, derived independently of the planner.
    part = write_region.partition
    exact = {}
    for r in range(nprocs):
        ctx = part.rank_ctx(r)
        m = np.zeros(size, dtype=bool)
        if ctx is not None:
            for i in ctx.values():
                m[stride * (i - 1) + off] = True
                if two_phase and stride >= 2:
                    m[stride * (i - 1) + off + 1] = True
        exact[r] = m

    # (2) each slave's transfers cover its writes; pairwise disjoint.
    ranks = sorted(per_rank)
    for r in ranks:
        assert not (exact[r] & ~per_rank[r]).any(), "write not collected"
    for i, r1 in enumerate(ranks):
        for r2 in ranks[i + 1 :]:
            assert not (per_rank[r1] & per_rank[r2]).any()

    # (1) at fine grain (or after demotion) coverage is exact.
    if aplan.collect_grain == "fine":
        for r in ranks:
            assert np.array_equal(per_rank[r], exact[r])

    # (4) end-to-end value equivalence.
    seq = run_sequential(prog)
    par = run_program(prog)
    assert np.array_equal(par.memory.array("A"), seq.memory.array("A"))


@settings(max_examples=30, deadline=None)
@given(
    shift=st.integers(0, 3),
    n=st.integers(8, 32),
    nprocs=st.integers(2, 4),
)
def test_property_scatter_covers_exposed_reads(shift, n, nprocs):
    """Reads of B(I+shift): each rank's scatter (plus its own prior
    writes) must cover its read set."""
    size = n + shift
    src = f"""
      PROGRAM PROP2
      PARAMETER (N = {n}, NS = {size})
      REAL*8 A(N), B(NS)
      INTEGER I
      B(1) = 0.5
      DO I = 1, NS
        B(I) = DBLE(I)
      ENDDO
      DO I = 1, N
        A(I) = B(I + {shift})
      ENDDO
      END
"""
    prog = compile_source(src, nprocs=nprocs, granularity="fine")
    regions = [
        r for r in iter_regions(prog.regions) if isinstance(r, ParRegion)
    ]
    read_region = regions[-1]
    plan = prog.plans[read_region.region_id]
    aplan = plan.arrays["B"]
    part = read_region.partition
    for r in range(1, nprocs):
        ctx = part.rank_ctx(r)
        if ctx is None:
            continue
        needed = np.zeros(size, dtype=bool)
        for i in ctx.values():
            needed[i + shift - 1] = True
        held = np.zeros(size, dtype=bool)
        # What the rank wrote itself in the init loop.
        init_ctx = regions[0].partition.rank_ctx(r)
        if init_ctx is not None and regions[0].loop.body:
            for i in init_ctx.values():
                held[i - 1] = True
        for t in aplan.scatter.get(r, []):
            held[t.indices()] = True
        if r in aplan.scatter_skipped:
            # Planner proved validity: own writes must cover the need.
            assert not (needed & ~held).any()
        else:
            assert not (needed & ~held).any()
