"""Tests for the static comm-plan verifier (docs/CHECK.md).

Two contracts anchor the suite:

* **no false positives** — every healthy workload variant that passes
  digest-invariance today must come back clean;
* **no false negatives** — every seeded-bug program in tests/badprogs
  must produce exactly its manifest's diagnostic codes, and the full
  report bytes are pinned as goldens (regenerate with
  ``python tests/make_check_goldens.py`` after intentional changes).
"""

import json
import os
from pathlib import Path

import pytest

from repro.compiler.pipeline import compile_source
from repro.runtime.executor import run_program, run_sequential
from repro.sweep.cache import canonical_json
from repro.tools.check import (
    CHECK_SCHEMA_VERSION,
    DIAGNOSTIC_CODES,
    CheckReport,
    bad_region_map,
    check_program,
    check_source,
)
from repro.workloads import source_for

BADPROG_DIR = Path(__file__).parent / "badprogs"
GOLDEN_DIR = Path(__file__).parent / "golden"
MANIFEST = json.loads((BADPROG_DIR / "manifest.json").read_text())


def badprog(fname: str) -> str:
    return (BADPROG_DIR / fname).read_text()


# ---------------------------------------------------------------------------
# Healthy corpus: no false positives
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("spec", ["MM-16", "JACOBI-12", "XOVER-24"])
@pytest.mark.parametrize("granularity", ["fine", "coarse"])
@pytest.mark.parametrize("partition", ["auto", "block", "cyclic"])
def test_healthy_workloads_are_clean(spec, granularity, partition):
    report = check_source(
        source_for(spec),
        nprocs=4,
        granularity=granularity,
        partition=partition,
    )
    assert report.clean, report.summary()
    assert report.codes() == set()


def test_clean_report_omits_empty_fields():
    report = check_source(source_for("MM-16"))
    row = report.to_jsonable()
    assert "diagnostics" not in row
    assert "notes" not in row
    assert row["version"] == CHECK_SCHEMA_VERSION
    assert CheckReport.from_jsonable(row) == report


# ---------------------------------------------------------------------------
# Seeded-bug corpus: no false negatives, pinned goldens
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fname", sorted(MANIFEST))
def test_badprog_produces_expected_codes(fname):
    spec = MANIFEST[fname]
    report = check_source(badprog(fname), **spec["options"])
    assert not report.clean
    assert set(spec["expected"]) <= report.codes(), report.summary()
    assert report.codes() <= set(DIAGNOSTIC_CODES)


@pytest.mark.parametrize("fname", sorted(MANIFEST))
def test_badprog_golden_report_bytes(fname):
    spec = MANIFEST[fname]
    report = check_source(badprog(fname), **spec["options"])
    stem = os.path.splitext(fname)[0]
    golden = (GOLDEN_DIR / f"check_{stem}.json").read_text()
    assert canonical_json(report.to_jsonable()) + "\n" == golden
    # The golden round-trips to an equal report.
    assert CheckReport.from_jsonable(json.loads(golden)) == report


def test_diagnostics_are_deterministically_ordered():
    spec = MANIFEST["race_coarse_collect.f"]
    a = check_source(badprog("race_coarse_collect.f"), **spec["options"])
    b = check_source(badprog("race_coarse_collect.f"), **spec["options"])
    assert [d.to_jsonable() for d in a.diagnostics] == [
        d.to_jsonable() for d in b.diagnostics
    ]
    keys = [(d.region_id, d.code, d.array or "", d.rank or -1)
            for d in a.diagnostics]
    assert keys == sorted(keys)


# ---------------------------------------------------------------------------
# RV401 is a real-bug detector, not a style warning
# ---------------------------------------------------------------------------

def test_rv401_flags_silently_wrong_answers():
    """The illegal split computes a different SUM than sequential —
    exactly the silent corruption the verifier exists to catch."""
    source = badprog("illegal_split_block.f")
    prog = compile_source(
        source, nprocs=4, granularity="fine", partition="block:1"
    )
    assert "RV401" in check_program(prog).codes()
    par = run_program(prog, execute=True)
    seq = run_sequential(prog, execute=True)
    assert par.stdout != seq.stdout
    # The same program under the auto policy is clean and correct.
    auto = compile_source(source, nprocs=4, granularity="fine")
    assert check_program(auto).clean
    assert run_program(auto, execute=True).stdout == seq.stdout


def test_bad_region_map_for_tuner_pruning():
    source = badprog("illegal_split_cyclic.f")
    prog = compile_source(
        source, nprocs=4, granularity="fine", partition="cyclic:1"
    )
    bad = bad_region_map(prog)
    assert bad and all("RV401" in codes for codes in bad.values())
    assert bad_region_map(compile_source(source_for("MM-16"))) == {}


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------

def test_check_source_warm_cache_byte_identity(tmp_path):
    spec = MANIFEST["uncovered_read.f"]
    src = badprog("uncovered_read.f")
    cold = check_source(src, cache_dir=str(tmp_path), **spec["options"])
    warm = check_source(src, cache_dir=str(tmp_path), **spec["options"])
    assert not cold.cached and warm.cached
    assert canonical_json(cold.to_jsonable()) == canonical_json(
        warm.to_jsonable()
    )
    # ``cached`` is provenance, not content: the reports still compare
    # equal (compare=False field).
    assert cold == warm


def test_check_source_cache_distinguishes_options(tmp_path):
    src = source_for("MM-16")
    fine = check_source(src, granularity="fine", cache_dir=str(tmp_path))
    coarse = check_source(src, granularity="coarse", cache_dir=str(tmp_path))
    assert not coarse.cached  # different option, different cache slot
    assert fine.granularity == "fine" and coarse.granularity == "coarse"
