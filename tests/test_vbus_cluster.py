"""Tests for the NIC cost model, Ethernet baseline, and cluster facade."""

import pytest

from repro.sim import Simulator
from repro.vbus import (
    ETHERNET_100,
    VBUS_SKWP,
    build_cluster,
)
from repro.vbus.nic import RECV_OVERHEAD_S
from repro.vbus.params import ClusterParams, NicParams, cluster_for


def run_transfer(cluster, src, dst, nbytes, **kw):
    proc = cluster.sim.process(cluster.transfer(src, dst, nbytes, **kw))
    return cluster.sim.run(until=proc)


def test_build_cluster_shapes():
    assert build_cluster(4).params.mesh == (2, 2)
    assert build_cluster(2).params.mesh == (1, 2)
    assert build_cluster(1).params.mesh == (1, 1)
    assert build_cluster(6).params.mesh == (2, 3)


def test_cluster_for_rejects_bad():
    with pytest.raises(ValueError):
        cluster_for(0)


def test_contiguous_transfer_uses_dma_and_charges_costs():
    cl = build_cluster(4)
    r = run_transfer(cl, 0, 3, 8000, contiguous=True)
    nic = cl.params.nic
    # DMA caps streaming below the raw link rate.
    rate = min(cl.link_rate_Bps, nic.dma_rate_Bps)
    expected = (
        nic.per_message_overhead_s()
        + nic.dma_setup_s
        + 2 * cl.params.link.router_delay_s
        + 8000 / rate
        + RECV_OVERHEAD_S
    )
    assert r.total_s == pytest.approx(expected)
    assert r.contiguous
    assert cl.nics[0].dma_transfers == 1
    assert r.cpu_s == pytest.approx(nic.per_message_overhead_s() + nic.dma_setup_s)


def test_strided_transfer_uses_pio_and_is_slower_per_byte():
    cl = build_cluster(4)
    elements = 1000
    nbytes = elements * 8
    r_pio = run_transfer(cl, 0, 1, nbytes, elements=elements, contiguous=False)
    cl2 = build_cluster(4)
    r_dma = run_transfer(cl2, 0, 1, nbytes, contiguous=True)
    assert r_pio.total_s > r_dma.total_s
    # PIO occupies the CPU for the whole copy; DMA does not.
    assert r_pio.cpu_s > 10 * r_dma.cpu_s
    assert cl.nics[0].pio_elements == elements


def test_self_transfer_is_free():
    cl = build_cluster(4)
    r = run_transfer(cl, 2, 2, 123456)
    assert r.total_s == 0.0


def test_rank_validation():
    cl = build_cluster(4)
    with pytest.raises(ValueError):
        cl.sim.process(cl.transfer(0, 9, 10)).sim.run()


def test_kernel_level_path_costs_more():
    shared = build_cluster(4)
    unshared_params = cluster_for(
        4, ClusterParams(nic=NicParams(shared_queue=False))
    )
    unshared = build_cluster(4, params=unshared_params)
    t_shared = run_transfer(shared, 0, 1, 64).total_s
    t_unshared = run_transfer(unshared, 0, 1, 64).total_s
    delta = unshared.params.nic.context_switch_s
    assert t_unshared == pytest.approx(t_shared + delta)


def test_hw_broadcast_vbus():
    cl = build_cluster(4)
    proc = cl.sim.process(cl.hw_broadcast(0, 5000))
    r = cl.sim.run(until=proc)
    assert r.total_s > 0
    assert cl.vbusctl.broadcast_count == 1
    stats = cl.stats()
    assert stats["hw_broadcasts"] == 1
    assert stats["freezes"] == 1


def test_hw_broadcast_single_node_noop():
    cl = build_cluster(1)
    proc = cl.sim.process(cl.hw_broadcast(0, 5000))
    assert cl.sim.run(until=proc) is None


def test_ethernet_cluster_transfer_and_broadcast():
    cl = build_cluster(4, params=cluster_for(4, ETHERNET_100))
    assert cl.mesh is None and cl.ethernet is not None
    r = run_transfer(cl, 0, 1, 1500)
    p = cl.params.ethernet
    assert r.total_s > 2 * p.sw_latency_s
    proc = cl.sim.process(cl.hw_broadcast(2, 1000))
    rb = cl.sim.run(until=proc)
    assert rb.total_s > 0
    assert cl.ethernet.messages == 2


def test_vbus_card_about_4x_lower_latency_than_ethernet():
    """The paper's §2.1 headline: small-message latency ratio ≈ 4."""
    vb = build_cluster(4)
    et = build_cluster(4, params=cluster_for(4, ETHERNET_100))
    t_vb = run_transfer(vb, 0, 1, 64).total_s
    t_et = run_transfer(et, 0, 1, 64).total_s
    assert 3.0 <= t_et / t_vb <= 5.5


def test_vbus_card_about_4x_bandwidth_of_ethernet():
    """Large-message effective bandwidth ratio ≈ 4 (50 vs 12.5 MB/s)."""
    vb = build_cluster(4)
    et = build_cluster(4, params=cluster_for(4, ETHERNET_100))
    n = 10_000_000
    bw_vb = n / run_transfer(vb, 0, 1, n).total_s
    bw_et = n / run_transfer(et, 0, 1, n).total_s
    assert 3.3 <= bw_vb / bw_et <= 4.8


def test_ethernet_medium_is_shared():
    cl = build_cluster(4, params=cluster_for(4, ETHERNET_100))
    done = []

    def send(src, dst):
        r = yield from cl.transfer(src, dst, 1_000_000)
        done.append(cl.sim.now)

    cl.sim.process(send(0, 1))
    cl.sim.process(send(2, 3))
    cl.sim.run()
    # Disjoint node pairs still serialize on the single segment.
    assert done[1] > 1.8 * done[0] - 2 * cl.params.ethernet.sw_latency_s


def test_stats_aggregation_keys():
    cl = build_cluster(4)
    run_transfer(cl, 0, 1, 100)
    s = cl.stats()
    assert s["messages"] == 1
    assert s["bytes"] == 100
    assert s["mesh_messages"] == 1
