"""Tests for two-sided point-to-point messaging."""

import numpy as np
import pytest

from repro.mpi2 import ANY_SOURCE, ANY_TAG, MpiError, Mpi2Runtime
from repro.vbus import build_cluster

from tests.mpiutil import run_ranks


def test_send_recv_object():
    def body(comm, rank):
        if rank == 0:
            yield from comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
            return None
        if rank == 1:
            data = yield from comm.recv(source=0, tag=11)
            return data
        return None

    results, _rt, _cl = run_ranks(4, body)
    assert results[1] == {"a": 7, "b": 3.14}


def test_send_recv_numpy_roundtrip_and_isolation():
    def body(comm, rank):
        if rank == 0:
            arr = np.arange(100, dtype=np.float64)
            yield from comm.send(arr, dest=1, tag=5)
            arr[:] = -1  # mutation after send must not reach the receiver
        elif rank == 1:
            data = yield from comm.recv(source=0, tag=5)
            return data
        return None

    results, _rt, _cl = run_ranks(2, body)
    assert np.array_equal(results[1], np.arange(100, dtype=np.float64))


def test_recv_by_tag_out_of_order():
    def body(comm, rank):
        if rank == 0:
            yield from comm.send("first", dest=1, tag=1)
            yield from comm.send("second", dest=1, tag=2)
        elif rank == 1:
            b = yield from comm.recv(source=0, tag=2)
            a = yield from comm.recv(source=0, tag=1)
            return (a, b)
        return None

    results, _rt, _cl = run_ranks(2, body)
    assert results[1] == ("first", "second")


def test_any_source_any_tag():
    def body(comm, rank):
        if rank in (1, 2):
            yield from comm.send(rank * 10, dest=0, tag=rank)
        elif rank == 0:
            got = []
            for _ in range(2):
                payload, status = yield from comm.recv_status(ANY_SOURCE, ANY_TAG)
                got.append((status.source, status.tag, payload))
            return sorted(got)
        return None

    results, _rt, _cl = run_ranks(3, body)
    assert results[0] == [(1, 1, 10), (2, 2, 20)]


def test_recv_blocks_until_message_arrives():
    times = {}

    def body(comm, rank):
        if rank == 0:
            yield comm.sim.timeout(1e-3)
            yield from comm.send("late", dest=1)
        elif rank == 1:
            data = yield from comm.recv(source=0)
            times["recv_done"] = comm.sim.now
            return data
        return None

    results, _rt, _cl = run_ranks(2, body)
    assert results[1] == "late"
    assert times["recv_done"] > 1e-3


def test_isend_irecv():
    def body(comm, rank):
        if rank == 0:
            req = comm.isend(np.ones(10), dest=1, tag=7)
            yield from req.wait()
            assert req.complete
        elif rank == 1:
            req = comm.irecv(source=0, tag=7)
            data = yield from req.wait()
            return data
        return None

    results, _rt, _cl = run_ranks(2, body)
    assert np.array_equal(results[1], np.ones(10))


def test_sendrecv_exchange_no_deadlock():
    def body(comm, rank):
        partner = 1 - rank
        data = yield from comm.sendrecv(f"from{rank}", dest=partner, source=partner)
        return data

    results, _rt, _cl = run_ranks(2, body)
    assert results[0] == "from1"
    assert results[1] == "from0"


def test_probe_sees_pending_message():
    def body(comm, rank):
        if rank == 0:
            yield from comm.send("x", dest=1, tag=9)
        elif rank == 1:
            # Wait long enough for delivery, then probe without receiving.
            yield comm.sim.timeout(1.0)
            st = comm.probe()
            assert st is not None and st.source == 0 and st.tag == 9
            assert comm.probe(tag=3) is None
            data = yield from comm.recv()
            return data
        return None

    results, _rt, _cl = run_ranks(2, body)
    assert results[1] == "x"


def test_self_send_recv():
    def body(comm, rank):
        yield from comm.send(rank + 100, dest=rank, tag=0)
        data = yield from comm.recv(source=rank)
        return data

    results, _rt, _cl = run_ranks(2, body)
    assert results == {0: 100, 1: 101}


def test_send_rank_validation():
    def body(comm, rank):
        if rank == 0:
            with pytest.raises(MpiError):
                yield from comm.send("x", dest=99)
        return None
        yield  # keep it a generator

    run_ranks(2, body)


def test_comm_time_accumulates_on_both_sides():
    def body(comm, rank):
        if rank == 0:
            yield from comm.send(np.zeros(1000), dest=1)
        elif rank == 1:
            yield from comm.recv(source=0)
        return None

    _res, rt, _cl = run_ranks(2, body)
    assert rt.comm(0).comm_s > 0
    assert rt.comm(1).comm_s > 0
    assert rt.comm(0).sent_bytes == 8000


def test_message_bigger_transfers_take_longer():
    def timed(nbytes):
        def body(comm, rank):
            if rank == 0:
                yield from comm.send(np.zeros(nbytes // 8), dest=1)
            elif rank == 1:
                yield from comm.recv(source=0)
                return comm.sim.now
            return None

        results, _rt, _cl = run_ranks(2, body)
        return results[1]

    assert timed(800_000) > timed(8_000) > 0


def test_runtime_rank_validation():
    rt = Mpi2Runtime(build_cluster(2))
    with pytest.raises(MpiError):
        rt.comm(5)
