#!/usr/bin/env bash
# Tier-1 tests + wall-clock benchmark, emitting BENCH_PR9.json.
#
# Usage: tools/run_benchmarks.sh [--quick] [-o OUT.json]
#   --quick   skip the MM-1024 scale (fast CI smoke run)
#   -o OUT    benchmark output path (default: BENCH_PR9.json; the
#             summary at the end reads whatever path is in effect)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

# The benchmark owns its default output path; mirror it here so the
# summary step reads the same file the benchmark wrote (no hardcoding).
BENCH_OUT=BENCH_PR9.json
args=("$@")
for ((i = 0; i < ${#args[@]}; i++)); do
  case "${args[$i]}" in
    -o|--output) BENCH_OUT="${args[$((i + 1))]}" ;;
  esac
done

echo "== tier-1 tests (slow whole-program tests excluded) =="
python -m pytest -x -q -m "not slow"

echo
echo "== slow whole-program equivalence tests =="
python -m pytest -x -q -m slow

echo
echo "== docs snippet check (README/docs examples must run) =="
tools/check_docs.sh -m "not slow"

echo
echo "== chaos smoke (seeded fault plans + fault-off overhead) =="
python tools/chaos_smoke.py

echo
echo "== sweep smoke (cold run, then warm run must hit the cache) =="
SWEEP_TMP="$(mktemp -d)"
trap 'rm -rf "$SWEEP_TMP"' EXIT
cat > "$SWEEP_TMP/grid.json" <<'EOF'
{
  "name": "ci-smoke",
  "axes": {
    "workload": ["MM-16", "JACOBI-8x2", "CFFZINIT-5"],
    "nprocs": [2, 4]
  },
  "defaults": {"granularity": "coarse"}
}
EOF
python -m repro sweep "$SWEEP_TMP/grid.json" --jobs 2 --quiet \
  --cache-dir "$SWEEP_TMP/cache" -o "$SWEEP_TMP/cold.jsonl"
python -m repro sweep "$SWEEP_TMP/grid.json" --quiet \
  --cache-dir "$SWEEP_TMP/cache" -o "$SWEEP_TMP/warm.jsonl" \
  | tee "$SWEEP_TMP/warm.txt"
cmp "$SWEEP_TMP/cold.jsonl" "$SWEEP_TMP/warm.jsonl"
grep -q "6 cache hit(s)" "$SWEEP_TMP/warm.txt" \
  || { echo "sweep smoke: warm run did not hit the cache"; exit 1; }
echo "sweep smoke OK (6 jobs, warm run all cache hits, JSONL identical)"

echo
echo "== autotune smoke (tuned >= best global, warm plan-cache hit) =="
python tools/autotune_smoke.py

echo
echo "== partition smoke (mixed-plan wins, digest invariance, cache) =="
python tools/partition_smoke.py

echo
echo "== calibrate smoke (fit, warm-cache byte-identity, probe pruning) =="
python tools/calibrate_smoke.py

echo
echo "== check smoke (verifier corpus, sanitizer contract, pruning) =="
python tools/check_smoke.py

echo
echo "== wall-clock benchmark =="
python benchmarks/bench_wallclock.py "$@"

echo
echo "$BENCH_OUT:"
python -c "import json,sys; d=json.load(open(sys.argv[1])); print(json.dumps({'suite': d['suite'], 'rows': d['rows']}, indent=2))" "$BENCH_OUT"
