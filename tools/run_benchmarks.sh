#!/usr/bin/env bash
# Tier-1 tests + wall-clock benchmark, emitting BENCH_PR1.json.
#
# Usage: tools/run_benchmarks.sh [--quick]
#   --quick   skip the MM-1024 scale (fast CI smoke run)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tier-1 tests (slow whole-program tests excluded) =="
python -m pytest -x -q -m "not slow"

echo
echo "== slow whole-program equivalence tests =="
python -m pytest -x -q -m slow

echo
echo "== docs snippet check (README/docs examples must run) =="
tools/check_docs.sh -m "not slow"

echo
echo "== chaos smoke (seeded fault plans + fault-off overhead) =="
python tools/chaos_smoke.py

echo
echo "== wall-clock benchmark =="
python benchmarks/bench_wallclock.py "$@"

echo
echo "BENCH_PR1.json:"
python -c "import json; print(json.dumps(json.load(open('BENCH_PR1.json'))['rows'], indent=2))"
