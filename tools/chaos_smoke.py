"""CI chaos smoke: seeded fault plans over real workloads + overhead check.

Two jobs, both fast enough for every CI run:

1. **Chaos sweep** — three seeded fault plans x two workloads.  Each run
   must end in one of the two contracted outcomes (docs/FAULTS.md):
   *recovered* (bit-identical arrays vs the fault-free run) or a *typed*
   ``MpiFaultError``.  Anything else — silent corruption, a hang, an
   untyped exception — fails the smoke.

2. **Fault-off overhead** — with the fault layer merged but *no* plan
   active, the per-transfer injection hooks must be near-free.  The
   script times the MM-256 fast-path run and compares against the
   ``fast_run_s`` recorded in ``BENCH_PR1.json`` (same machine, pre-fault
   baseline).  The <1% target is a soft threshold: wall-clock noise on
   shared CI easily exceeds it, so a miss prints a WARNING instead of
   failing the build.

Run directly (no pytest needed)::

    PYTHONPATH=src python tools/chaos_smoke.py [--skip-overhead]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.compiler.pipeline import compile_source
from repro.faults import FaultPlan, FaultSpec
from repro.mpi2.exceptions import MpiFaultError
from repro.runtime.executor import run_program
from repro.vbus.params import VBUS_SKWP, cluster_for
from repro.workloads import jacobi, mm

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

OVERHEAD_SOFT_PCT = 1.0

#: The smoke plans: one pure-loss plan, one corruption+jitter plan, and
#: one availability plan (stall + kill) expected to end in a typed error.
PLANS = [
    (
        "drop5",
        FaultPlan(
            seed=11, specs=(FaultSpec(kind="drop", rate=0.05),), max_sim_s=10.0
        ),
    ),
    (
        "corrupt+delay",
        FaultPlan(
            seed=22,
            specs=(
                FaultSpec(kind="corrupt", rate=0.03),
                FaultSpec(kind="delay", rate=0.2, delay_s=5e-6),
            ),
            max_sim_s=10.0,
        ),
    ),
    (
        "stall+kill",
        FaultPlan(
            seed=33,
            specs=(
                FaultSpec(kind="stall", node=1, t0=0.0, t1=1e-4),
                FaultSpec(kind="kill", node=2, at_s=2e-4),
            ),
            max_sim_s=10.0,
        ),
    ),
]


def _workloads():
    return [
        ("JACOBI-16", jacobi.source(n=16, steps=2)),
        ("MM-12", mm.source(12)),
    ]


def chaos_sweep() -> int:
    params = cluster_for(4, VBUS_SKWP)
    failures = 0
    print(f"{'workload':10s} {'plan':14s} {'outcome':34s} detail")
    for wname, src in _workloads():
        prog = compile_source(src, nprocs=4, granularity="coarse")
        clean = run_program(prog, cluster_params=params)
        for pname, plan in PLANS:
            try:
                rep = run_program(prog, cluster_params=params, faults=plan)
            except MpiFaultError as exc:
                print(
                    f"{wname:10s} {pname:14s} {'typed error (ok)':34s} "
                    f"{type(exc).__name__}"
                )
                continue
            except Exception as exc:  # noqa: BLE001 - contract violation
                failures += 1
                print(
                    f"{wname:10s} {pname:14s} {'UNTYPED ERROR (fail)':34s} "
                    f"{type(exc).__name__}: {exc}"
                )
                continue
            identical = all(
                np.array_equal(clean.memory.arrays[n], rep.memory.arrays[n])
                for n in clean.memory.arrays
            )
            fs = rep.fault_stats
            detail = (
                f"{int(fs.get('fault_dropped_flits', 0))} drop,"
                f" {int(fs.get('fault_corrupt_flits', 0))} corrupt,"
                f" {int(fs.get('fault_retx_rounds', 0))} retx,"
                f" {int(fs.get('fault_stalls', 0))} stall"
            )
            if identical:
                print(f"{wname:10s} {pname:14s} {'recovered (ok)':34s} {detail}")
            else:
                failures += 1
                print(
                    f"{wname:10s} {pname:14s} "
                    f"{'SILENT CORRUPTION (fail)':34s} {detail}"
                )
    return failures


def overhead_check() -> None:
    bench_path = os.path.join(ROOT, "BENCH_PR1.json")
    baseline = None
    if os.path.exists(bench_path):
        with open(bench_path) as fh:
            rows = json.load(fh).get("rows", [])
        for row in rows:
            if row.get("workload") == "MM-256" and row.get("nprocs") == 4:
                baseline = row.get("fast_run_s")
                break
    src = mm.source(256)
    from dataclasses import replace

    params = replace(cluster_for(4, VBUS_SKWP), fast_path=True)
    prog = compile_source(src, nprocs=4, granularity="fine")
    # execute=False matches bench_wallclock's timing mode (the recorded
    # fast_run_s skips the numeric array work).
    run_program(prog, cluster_params=params, execute=False)  # warm-up
    samples = []
    for _ in range(3):
        t0 = time.perf_counter()
        run_program(prog, cluster_params=params, execute=False)
        samples.append(time.perf_counter() - t0)
    now_s = min(samples)
    print(f"fault-off MM-256 fast run : {now_s:.4f} s (best of {len(samples)})")
    if baseline is None:
        print("no MM-256 fast_run_s in BENCH_PR1.json; overhead not compared")
        return
    pct = (now_s - baseline) / baseline * 100.0
    print(
        f"BENCH_PR1 fast_run_s      : {baseline:.4f} s "
        f"(fault-off overhead {pct:+.2f}%, soft target <{OVERHEAD_SOFT_PCT:.0f}%)"
    )
    if pct > OVERHEAD_SOFT_PCT:
        print(
            f"WARNING: fault-off overhead {pct:+.2f}% exceeds the "
            f"{OVERHEAD_SOFT_PCT:.0f}% soft target (wall-clock noise or a "
            "real regression in the injection hooks)"
        )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--skip-overhead",
        action="store_true",
        help="run only the chaos sweep (skip the wall-clock comparison)",
    )
    args = ap.parse_args(argv)
    print("== chaos smoke: 3 seeded plans x 2 workloads ==")
    failures = chaos_sweep()
    if not args.skip_overhead:
        print()
        print("== fault-off overhead vs BENCH_PR1 ==")
        overhead_check()
    if failures:
        print(f"\n{failures} contract violation(s)")
        return 1
    print("\nchaos smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
