"""CI chaos smoke: seeded fault plans over real workloads + overhead check.

Two jobs, both fast enough for every CI run:

1. **Chaos sweep** — three seeded fault plans x two workloads, expressed
   as a ``repro.sweep`` grid (``faults`` is a sweep axis; ``null`` is the
   fault-free control).  Each faulted job must end in one of the two
   contracted outcomes (docs/FAULTS.md): *recovered* (its row's
   ``array_digest`` matches the control row's — bit-identical numeric
   state) or a *typed* ``MpiFaultError`` (a ``fault`` row).  Anything
   else — silent corruption, an untyped ``error`` row — fails the smoke.
   The sweep runs uncached: a smoke that replays cached rows would stop
   exercising the fault layer.

2. **Fault-off overhead** — with the fault layer merged but *no* plan
   active, the per-transfer injection hooks must be near-free.  The
   script times the MM-256 fast-path run and compares against the
   ``fast_run_s`` recorded in ``BENCH_PR6.json`` (same machine, measured
   by ``benchmarks/bench_wallclock.py``).  The <1% target is a soft
   threshold: wall-clock noise on shared CI easily exceeds it, so a miss
   prints a WARNING instead of failing the build.

Run directly (no pytest needed)::

    PYTHONPATH=src python tools/chaos_smoke.py [--skip-overhead] [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.compiler.pipeline import compile_source
from repro.faults import FaultPlan, FaultSpec
from repro.runtime.executor import run_program
from repro.sweep import run_sweep
from repro.vbus.params import VBUS_SKWP, cluster_for
from repro.workloads import mm

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

OVERHEAD_SOFT_PCT = 1.0

#: The smoke plans: one pure-loss plan, one corruption+jitter plan, and
#: one availability plan (stall + kill) expected to end in a typed error.
PLANS = [
    (
        "drop5",
        FaultPlan(
            seed=11, specs=(FaultSpec(kind="drop", rate=0.05),), max_sim_s=10.0
        ),
    ),
    (
        "corrupt+delay",
        FaultPlan(
            seed=22,
            specs=(
                FaultSpec(kind="corrupt", rate=0.03),
                FaultSpec(kind="delay", rate=0.2, delay_s=5e-6),
            ),
            max_sim_s=10.0,
        ),
    ),
    (
        "stall+kill",
        FaultPlan(
            seed=33,
            specs=(
                FaultSpec(kind="stall", node=1, t0=0.0, t1=1e-4),
                FaultSpec(kind="kill", node=2, at_s=2e-4),
            ),
            max_sim_s=10.0,
        ),
    ),
]

WORKLOADS = ("JACOBI-16x2", "MM-12")


def _chaos_grid():
    """The smoke as a sweep grid: faults is just another axis."""
    return {
        "name": "chaos-smoke",
        "axes": {
            "workload": list(WORKLOADS),
            # null = the fault-free control each faulted run is compared to.
            "faults": [None] + [json.loads(p.to_json()) for _, p in PLANS],
        },
        "defaults": {
            "nprocs": 4,
            "granularity": "coarse",
            "execute": True,
        },
    }


def _plan_name(faults) -> str:
    if faults is None:
        return "(clean)"
    for name, plan in PLANS:
        if json.loads(plan.to_json()) == faults:
            return name
    return "?"


def chaos_sweep(jobs: int) -> int:
    result = run_sweep(_chaos_grid(), jobs=jobs, cache_dir=None)
    clean_digest = {
        row["workload"]: (row.get("result") or {}).get("array_digest")
        for row in result.rows
        if row["faults"] is None
    }
    failures = 0
    print(f"{'workload':10s} {'plan':14s} {'outcome':34s} detail")
    for row in result.rows:
        wname = row["workload"]
        pname = _plan_name(row["faults"])
        if row["faults"] is None:
            if row["status"] != "ok":
                failures += 1
                err = row.get("error") or {}
                print(
                    f"{wname:10s} {pname:14s} {'CLEAN RUN FAILED (fail)':34s} "
                    f"{err.get('type')}: {err.get('message')}"
                )
            continue
        if row["status"] == "fault":
            err = row["error"]
            print(
                f"{wname:10s} {pname:14s} {'typed error (ok)':34s} "
                f"{err['type']}"
            )
            continue
        if row["status"] == "error":
            failures += 1
            err = row["error"]
            print(
                f"{wname:10s} {pname:14s} {'UNTYPED ERROR (fail)':34s} "
                f"{err['type']}: {err['message']}"
            )
            continue
        res = row["result"]
        fs = res["fault_stats"]
        detail = (
            f"{int(fs.get('fault_dropped_flits', 0))} drop,"
            f" {int(fs.get('fault_corrupt_flits', 0))} corrupt,"
            f" {int(fs.get('fault_retx_rounds', 0))} retx,"
            f" {int(fs.get('fault_stalls', 0))} stall"
        )
        if res["array_digest"] == clean_digest.get(wname):
            print(f"{wname:10s} {pname:14s} {'recovered (ok)':34s} {detail}")
        else:
            failures += 1
            print(
                f"{wname:10s} {pname:14s} "
                f"{'SILENT CORRUPTION (fail)':34s} {detail}"
            )
    return failures


def overhead_check() -> None:
    bench_path = os.path.join(ROOT, "BENCH_PR6.json")
    baseline = None
    if os.path.exists(bench_path):
        with open(bench_path) as fh:
            rows = json.load(fh).get("rows", [])
        for row in rows:
            if row.get("workload") == "MM-256" and row.get("nprocs") == 4:
                baseline = row.get("fast_run_s")
                break
    src = mm.source(256)
    from dataclasses import replace

    params = replace(cluster_for(4, VBUS_SKWP), fast_path=True)
    prog = compile_source(src, nprocs=4, granularity="fine")
    # execute=False matches bench_wallclock's timing mode (the recorded
    # fast_run_s skips the numeric array work).
    run_program(prog, cluster_params=params, execute=False)  # warm-up
    samples = []
    for _ in range(3):
        t0 = time.perf_counter()
        run_program(prog, cluster_params=params, execute=False)
        samples.append(time.perf_counter() - t0)
    now_s = min(samples)
    print(f"fault-off MM-256 fast run : {now_s:.4f} s (best of {len(samples)})")
    if baseline is None:
        print("no MM-256 fast_run_s in BENCH_PR6.json; overhead not compared")
        return
    pct = (now_s - baseline) / baseline * 100.0
    print(
        f"BENCH_PR6 fast_run_s      : {baseline:.4f} s "
        f"(fault-off overhead {pct:+.2f}%, soft target <{OVERHEAD_SOFT_PCT:.0f}%)"
    )
    if pct > OVERHEAD_SOFT_PCT:
        print(
            f"WARNING: fault-off overhead {pct:+.2f}% exceeds the "
            f"{OVERHEAD_SOFT_PCT:.0f}% soft target (wall-clock noise or a "
            "real regression in the injection hooks)"
        )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--skip-overhead",
        action="store_true",
        help="run only the chaos sweep (skip the wall-clock comparison)",
    )
    ap.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="sweep worker processes (output is identical either way)",
    )
    args = ap.parse_args(argv)
    print("== chaos smoke: 3 seeded plans x 2 workloads (repro.sweep) ==")
    failures = chaos_sweep(args.jobs)
    if not args.skip_overhead:
        print()
        print("== fault-off overhead vs BENCH_PR6 ==")
        overhead_check()
    if failures:
        print(f"\n{failures} contract violation(s)")
        return 1
    print("\nchaos smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
