#!/usr/bin/env bash
# Validate that README/docs code snippets and CLI examples actually run,
# and that intra-repo markdown links point at files that exist.
#
# Usage: tools/check_docs.sh [pytest args...]
#   e.g. tools/check_docs.sh -m "not slow"   # skip the MM-256 quickstart
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "-- markdown link check --"
python - <<'EOF'
"""Fail on dead intra-repo links in tracked markdown files.

Scans every ``[text](target)`` whose target is neither an absolute URL
nor a bare ``#anchor`` and requires the referenced path to exist,
resolved relative to the linking file (``#fragment`` suffixes are
stripped; fragments themselves are not validated).
"""
import re
import subprocess
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Retrieval artifacts (verbatim paper/code dumps), not authored docs —
# they carry PDF-extraction debris like image refs that never existed.
SKIP = {"PAPER.md", "PAPERS.md", "SNIPPETS.md"}
files = [
    f
    for f in subprocess.run(
        ["git", "ls-files", "*.md"], capture_output=True, text=True,
        check=True,
    ).stdout.split()
    if f not in SKIP
]
dead = []
for name in files:
    path = Path(name)
    for lineno, line in enumerate(
        path.read_text().splitlines(), start=1
    ):
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            ref = target.split("#", 1)[0]
            if ref and not (path.parent / ref).exists():
                dead.append(f"{name}:{lineno}: dead link -> {target}")
if dead:
    print("\n".join(dead))
    sys.exit(1)
print(f"markdown links OK ({len(files)} file(s) scanned)")
EOF

echo "-- repo convention lints --"
python tools/lint_repo.py

echo "-- docs snippet tests --"
python -m pytest -q tests/test_docs_snippets.py "$@"
