#!/usr/bin/env bash
# Validate that README/docs code snippets and CLI examples actually run.
#
# Usage: tools/check_docs.sh [pytest args...]
#   e.g. tools/check_docs.sh -m "not slow"   # skip the MM-256 quickstart
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

python -m pytest -q tests/test_docs_snippets.py "$@"
