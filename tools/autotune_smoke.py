"""CI smoke for the per-region autotuner (docs/AUTOTUNE.md).

Asserts, on a handful of workload x backend cells:

* the tuned plan's ``comm`` metric never loses to the best global grain
  (and strictly beats all three on the XOVER-256/gige crossover cell);
* a warm plan-cache call returns ``cached=True`` and an artifact
  byte-identical to the cold one;
* the mixed-grain run's numeric state digests identically to the
  single-grain oracle (granularity is results-invariant).

Run: ``PYTHONPATH=src python tools/autotune_smoke.py``
"""

from __future__ import annotations

import shutil
import sys
import tempfile

from repro.compiler.pipeline import CompileOptions, compile_source
from repro.compiler.postpass.granularity import GRAINS
from repro.runtime.executor import run_program
from repro.sweep.cache import canonical_json
from repro.sweep.runner import BACKENDS
from repro.tools.tuneplan import tune_per_region
from repro.vbus import params as P
from repro.workloads import source_for

#: (workload spec, backend, strict-win required) smoke cells.
CELLS = (
    ("XOVER-256", "gige", True),
    ("XOVER-64", "ethernet100", False),
    ("MM-64", "vbus", False),
    ("JACOBI-32x3", "gige", False),
)


def _comm(source, options, params):
    prog = compile_source(source, options=options)
    return run_program(prog, cluster_params=params, execute=False).comm_max_s


def main() -> int:
    cache = tempfile.mkdtemp(prefix="autotune-smoke-")
    try:
        for spec, backend, need_strict in CELLS:
            source = source_for(spec)
            params = P.cluster_for(4, getattr(P, BACKENDS[backend]))

            cold = tune_per_region(
                source, nprocs=4, metric="comm", backend=backend,
                cache_dir=cache,
            )
            warm = tune_per_region(
                source, nprocs=4, metric="comm", backend=backend,
                cache_dir=cache,
            )
            if not warm.cached:
                print(f"{spec}/{backend}: warm plan-cache MISS")
                return 1
            if canonical_json(cold.to_jsonable()) != canonical_json(
                warm.to_jsonable()
            ):
                print(f"{spec}/{backend}: warm plan differs from cold")
                return 1

            tuned = _comm(source, cold.options(), params)
            globals_ = {
                g: _comm(
                    source,
                    CompileOptions(nprocs=4, granularity=g),
                    params,
                )
                for g in GRAINS
            }
            best = min(globals_.values())
            if tuned > best:
                print(
                    f"{spec}/{backend}: tuned {tuned} LOSES to "
                    f"best global {best}"
                )
                return 1
            if need_strict and not all(tuned < v for v in globals_.values()):
                print(
                    f"{spec}/{backend}: expected strict win, got "
                    f"tuned={tuned} globals={globals_}"
                )
                return 1

            oracle = run_program(
                compile_source(source, nprocs=4, granularity="fine"),
                cluster_params=params, execute=True,
            ).array_digest()
            mixed = run_program(
                compile_source(source, options=cold.options()),
                cluster_params=params, execute=True,
            ).array_digest()
            if mixed != oracle:
                print(f"{spec}/{backend}: mixed-plan digest diverged")
                return 1

            verdict = (
                "STRICT WIN" if all(tuned < v for v in globals_.values())
                else "matches best global"
            )
            print(
                f"{spec:12s} {backend:12s} tuned {tuned * 1e6:9.1f}us "
                f"vs best global {best * 1e6:9.1f}us  [{verdict}; "
                f"{cold.profiles} profile(s); warm hit OK; digest OK]"
            )
    finally:
        shutil.rmtree(cache, ignore_errors=True)
    print("autotune smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
