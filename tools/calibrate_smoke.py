"""CI smoke for the trace-calibrated cost model (docs/AUTOTUNE.md).

Asserts the calibration pipeline's three external guarantees, end to
end and fast enough for every CI run:

* the microbenchmark fit **works and is cached**: a cold
  ``calibrate()`` fits physically sane constants (non-negative, with a
  faster wire pricing bytes cheaper than a slower one), and a warm call
  returns the artifact from the content-addressed cache byte-identical
  to the cold one without touching the simulator;
* calibration **prunes probes without changing plans**: on an Ethernet
  study cell the calibrated joint tuner issues strictly fewer
  instrumented profile runs than the uncalibrated search while choosing
  the identical (grain, partition) plan;
* the artifact **keys the plan cache**: calibrated and uncalibrated
  searches of the same problem occupy different cache slots, so neither
  can serve the other a stale plan.

Run: ``PYTHONPATH=src python tools/calibrate_smoke.py``
"""

from __future__ import annotations

import shutil
import sys
import tempfile

from repro.sweep.cache import canonical_json
from repro.tools.calibrate import calibrate
from repro.tools.tuneplan import plan_cache_key, tune_per_region
from repro.workloads import source_for

#: (workload spec, backend): an Ethernet cell where the uncalibrated
#: search needs flip probes that the fitted constants make unnecessary.
PROBE_CELL = ("MM-96", "ethernet100")


def main() -> int:
    cache = tempfile.mkdtemp(prefix="calibrate-smoke-")
    try:
        # --- fit + warm-cache byte-identity ---------------------------
        cold = calibrate("ethernet100", nprocs=4, cache_dir=cache)
        fast = calibrate("gige", nprocs=4, cache_dir=cache)
        if cold.cached or fast.cached:
            print("FAIL: cold calibration claims a cache hit")
            return 1
        if any(c < 0.0 for c in cold.constants().values()):
            print("FAIL: fit produced a negative coefficient")
            return 1
        if not fast.per_byte_s < cold.per_byte_s:
            print(
                "FAIL: switched GigE must price bytes cheaper than shared "
                f"100 Mb Ethernet ({fast.per_byte_s} >= {cold.per_byte_s})"
            )
            return 1
        warm = calibrate("ethernet100", nprocs=4, cache_dir=cache)
        if not warm.cached:
            print("FAIL: warm calibration missed the artifact cache")
            return 1
        if canonical_json(warm.to_jsonable()) != canonical_json(
            cold.to_jsonable()
        ):
            print("FAIL: warm calibration artifact is not byte-identical")
            return 1
        print(
            f"fit OK: ethernet100 {cold.per_byte_s * 1e9:.1f} ns/B, "
            f"gige {fast.per_byte_s * 1e9:.1f} ns/B; warm hit byte-identical"
        )

        # --- probe pruning with an identical plan ---------------------
        spec, backend = PROBE_CELL
        source = source_for(spec)
        kw = dict(
            nprocs=4, metric="comm", backend=backend,
            cache_dir=None, tune_partition=True,
        )
        uncal = tune_per_region(source, **kw)
        cal = tune_per_region(source, **kw, calibration=cold)
        if (
            cal.default_grain != uncal.default_grain
            or cal.grain_map != uncal.grain_map
            or cal.partition_map != uncal.partition_map
        ):
            print(f"FAIL: {spec}/{backend}: calibrated plan diverged")
            return 1
        if not cal.profiles < uncal.profiles:
            print(
                f"FAIL: {spec}/{backend}: calibration did not prune "
                f"profiles ({cal.profiles} vs {uncal.profiles})"
            )
            return 1
        print(
            f"probe pruning OK: {spec}/{backend} "
            f"{uncal.profiles} -> {cal.profiles} instrumented run(s), "
            "plan identical"
        )

        # --- distinct plan-cache slots --------------------------------
        base = dict(
            source=source, backend=backend, nprocs=4, metric="comm",
            epsilon=0.05, tune_partition=True,
        )
        if plan_cache_key(**base) == plan_cache_key(
            **base, calibration_sha256=cold.sha256()
        ):
            print("FAIL: calibrated search shares the uncalibrated cache slot")
            return 1
        print("plan-cache keying OK: calibration sha joins the key")
    finally:
        shutil.rmtree(cache, ignore_errors=True)
    print("calibrate smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
