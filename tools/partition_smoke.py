"""CI smoke for per-region partition tuning (docs/PARTITION.md).

Asserts, on a handful of workload x backend cells:

* the §5.3 mixed plan (``partition="auto"``: cyclic for triangular
  regions, block otherwise) strictly beats both uniform strategies on
  the PXOVER crossover cells — including at least one Ethernet backend;
* the joint grain x strategy autotuner (``tune_partition=True``) ends
  no worse than the *best* of auto/block/cyclic on every cell — on
  MM/gige that means out-tuning the paper's own auto rule, whose block
  choice loses to cyclic there — and a warm plan-cache call returns
  ``cached=True`` with an artifact byte-identical to the cold one;
* partitioning is results-invariant: auto, uniform block, uniform
  cyclic, and the tuned plan all digest to identical numeric state —
  healthy *and* under a seeded recoverable fault plan.

Run: ``PYTHONPATH=src python tools/partition_smoke.py``
"""

from __future__ import annotations

import shutil
import sys
import tempfile

from repro.compiler.pipeline import CompileOptions, compile_source
from repro.faults import FaultPlan, FaultSpec
from repro.runtime.executor import run_program
from repro.sweep.cache import canonical_json
from repro.sweep.runner import BACKENDS
from repro.tools.tuneplan import tune_per_region
from repro.vbus import params as P
from repro.workloads import source_for

#: (workload spec, backend, strict-win required) smoke cells.
CELLS = (
    ("PXOVER-48", "gige", True),
    ("PXOVER-48", "ethernet100", True),
    ("PXOVER-32", "vbus", False),
    ("MM-32", "gige", False),
)

#: Recoverable wire faults for the digest-invariance-under-faults leg.
FAULTS = FaultPlan(
    seed=17,
    specs=(
        FaultSpec(kind="drop", rate=0.02),
        FaultSpec(kind="corrupt", rate=0.01),
    ),
    max_sim_s=10.0,
)

STRATEGIES = ("auto", "block", "cyclic")


def _comm(source, options, params):
    prog = compile_source(source, options=options)
    return run_program(prog, cluster_params=params, execute=False).comm_max_s


def _digest(source, options, params, faults=None):
    prog = compile_source(source, options=options)
    return run_program(
        prog, cluster_params=params, execute=True, faults=faults
    ).array_digest()


def main() -> int:
    cache = tempfile.mkdtemp(prefix="partition-smoke-")
    try:
        for spec, backend, need_strict in CELLS:
            source = source_for(spec)
            params = P.cluster_for(4, getattr(P, BACKENDS[backend]))

            uniform = {
                s: _comm(
                    source, CompileOptions(nprocs=4, partition=s), params
                )
                for s in STRATEGIES
            }
            auto = uniform["auto"]
            if need_strict and not (
                auto < uniform["block"] and auto < uniform["cyclic"]
            ):
                print(
                    f"{spec}/{backend}: expected strict mixed-plan win, "
                    f"got {uniform}"
                )
                return 1

            cold = tune_per_region(
                source, nprocs=4, metric="comm", backend=backend,
                cache_dir=cache, tune_partition=True,
            )
            warm = tune_per_region(
                source, nprocs=4, metric="comm", backend=backend,
                cache_dir=cache, tune_partition=True,
            )
            if not warm.cached:
                print(f"{spec}/{backend}: warm plan-cache MISS")
                return 1
            if canonical_json(cold.to_jsonable()) != canonical_json(
                warm.to_jsonable()
            ):
                print(f"{spec}/{backend}: warm plan differs from cold")
                return 1
            tuned = _comm(source, cold.options(), params)
            best = min(uniform.values())
            if tuned > best * (1 + 1e-9):
                print(
                    f"{spec}/{backend}: tuned {tuned} LOSES to the best "
                    f"static strategy {best} ({uniform})"
                )
                return 1

            plans = {
                s: CompileOptions(nprocs=4, partition=s) for s in STRATEGIES
            }
            plans["tuned"] = cold.options()
            for faults, leg in ((None, "healthy"), (FAULTS, "faulted")):
                digests = {
                    name: _digest(source, options, params, faults=faults)
                    for name, options in plans.items()
                }
                if len(set(digests.values())) != 1:
                    print(
                        f"{spec}/{backend}: {leg} digests diverged: "
                        f"{digests}"
                    )
                    return 1

            verdict = (
                "MIXED STRICT WIN"
                if auto < uniform["block"] and auto < uniform["cyclic"]
                else "tuned matches best uniform"
            )
            print(
                f"{spec:12s} {backend:12s} auto {auto * 1e6:9.1f}us / "
                f"block {uniform['block'] * 1e6:9.1f}us / cyclic "
                f"{uniform['cyclic'] * 1e6:9.1f}us / tuned "
                f"{tuned * 1e6:9.1f}us  [{verdict}; "
                f"{cold.profiles} profile(s); warm hit OK; digests OK]"
            )
    finally:
        shutil.rmtree(cache, ignore_errors=True)
    print("partition smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
