#!/usr/bin/env python
"""Repo-convention lints the generic toolchain can't express.

Two rules, both load-bearing for reproducibility contracts:

1. **No wall clocks in the simulator** (``src/repro/sim``,
   ``src/repro/vbus``): every quantity those layers produce must be
   *simulated* time — a ``time.time()`` / ``datetime.now()`` sneaking in
   breaks byte-identical reruns and the sweep cache (docs/SWEEP.md).

2. **Omitted-when-unset JSON fields**: in any ``to_jsonable`` method,
   an assignment of a registered optional key (``out["grain_map"] =
   ...``) must sit under an ``if`` — unconditionally emitting the key
   changes the bytes of every previously-committed artifact and cache
   row (the byte-compat convention of docs/SWEEP.md and docs/CHECK.md).

Usage::

    python tools/lint_repo.py          # lints the tree, exit 1 on findings

Run as part of tools/check_docs.sh.
"""

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: Directories whose code must never consult the host clock.
SIM_DIRS = ("src/repro/sim", "src/repro/vbus")

#: Host-clock call names, as ``module.attr`` attribute accesses.
WALL_CLOCK_ATTRS = {
    "time": {
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    },
    "datetime": {"now", "utcnow", "today"},
}

#: JSON keys that are optional-by-contract: their presence depends on
#: the run/plan configuration, so emitting them must be conditional.
#: Grow this set when a new omitted-when-unset field ships.
OPTIONAL_JSON_KEYS = {
    # RunReport (docs/SWEEP.md)
    "grain_map", "partition", "partition_map", "sanitizer",
    # TunePlan / RegionDecision (docs/AUTOTUNE.md)
    "tune_partition", "calibration_sha256", "measured",
    # CheckReport / Diagnostic / Violation (docs/CHECK.md)
    "diagnostics", "notes", "array", "rank", "loop_var", "region_id",
}


def _iter_py(rel_dirs):
    for rel in rel_dirs:
        yield from sorted((REPO / rel).rglob("*.py"))


def lint_wall_clock(findings):
    for path in _iter_py(SIM_DIRS):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            # time.perf_counter(), datetime.now(), datetime.datetime.now()
            if isinstance(node, ast.Attribute):
                base = node.value
                root = None
                if isinstance(base, ast.Name):
                    root = base.id
                elif isinstance(base, ast.Attribute):
                    root = base.attr
                if root in WALL_CLOCK_ATTRS and (
                    node.attr in WALL_CLOCK_ATTRS[root]
                ):
                    findings.append(
                        f"{path.relative_to(REPO)}:{node.lineno}: "
                        f"wall-clock call {root}.{node.attr} in simulator "
                        f"code (simulated time only)"
                    )
            # from time import perf_counter
            if isinstance(node, ast.ImportFrom) and node.module in (
                "time", "datetime"
            ):
                banned = WALL_CLOCK_ATTRS.get(node.module, set())
                for alias in node.names:
                    if alias.name in banned:
                        findings.append(
                            f"{path.relative_to(REPO)}:{node.lineno}: "
                            f"imports wall clock "
                            f"{node.module}.{alias.name} in simulator code"
                        )


def _optional_key_of(stmt):
    """The registered optional key a statement assigns, or None."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if not isinstance(target, ast.Subscript):
        return None
    sl = target.slice
    if isinstance(sl, ast.Constant) and sl.value in OPTIONAL_JSON_KEYS:
        return sl.value
    return None


def _check_jsonable(func, path, findings):
    """Optional-key assignments must be nested under an If."""

    def visit(stmts, guarded):
        for stmt in stmts:
            key = _optional_key_of(stmt)
            if key is not None and not guarded:
                findings.append(
                    f"{path.relative_to(REPO)}:{stmt.lineno}: "
                    f"to_jsonable emits optional key {key!r} "
                    f"unconditionally (omitted-when-unset convention)"
                )
            for child_field, child_guarded in (
                ("body", guarded or isinstance(stmt, ast.If)),
                ("orelse", guarded or isinstance(stmt, ast.If)),
                ("finalbody", guarded),
            ):
                children = getattr(stmt, child_field, None)
                if children:
                    visit(children, child_guarded)

    visit(func.body, guarded=False)


def lint_jsonable(findings):
    for path in _iter_py(("src/repro",)):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and (
                node.name == "to_jsonable"
            ):
                _check_jsonable(node, path, findings)


def main() -> int:
    findings = []
    lint_wall_clock(findings)
    lint_jsonable(findings)
    if findings:
        print("\n".join(findings))
        return 1
    nfiles = len(list(_iter_py(SIM_DIRS))) + len(
        list(_iter_py(("src/repro",)))
    )
    print(f"repo lints OK ({nfiles} file pass(es))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
