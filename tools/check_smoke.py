"""CI smoke for the static verifier + sanitizer stack (docs/CHECK.md).

Asserts the checking stack's corpus-wide guarantees, end to end:

* **no false positives**: every example workload kind, at every
  granularity x partition strategy that passes digest-invariance today,
  checks clean — and a warm ``check_source`` call returns the report
  from the content-addressed cache byte-identical to the cold one;
* **static-clean implies sanitizer-clean**: each of those clean
  variants also runs under the shadow-access sanitizer without a
  single violation;
* **no false negatives**: every seeded-bug program in tests/badprogs
  is flagged with its manifest's expected codes, and its sanitized run
  observes the defect dynamically;
* **pruning saves work, never changes answers**: on every PR 8/9
  study cell the autotuner with its static pruning tier emits a
  TunePlan byte-identical to the unpruned search while performing
  strictly fewer analytic evaluations.

Run: ``PYTHONPATH=src python tools/check_smoke.py``
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
from pathlib import Path

from repro.compiler.pipeline import compile_source
from repro.runtime.executor import run_program
from repro.sweep.cache import canonical_json
from repro.tools.check import check_source
from repro.tools.tuneplan import tune_per_region
from repro.workloads import source_for

REPO = Path(__file__).resolve().parents[1]
BADPROG_DIR = REPO / "tests" / "badprogs"

#: One small instance per workload kind: the healthy corpus.
HEALTHY = ("MM-16", "SWIM-16", "JACOBI-12", "CFFZINIT-5",
           "XOVER-24", "PXOVER-24")
GRAINS = ("fine", "middle", "coarse")
PARTITIONS = ("auto", "block", "cyclic")

#: The PR 8/9 autotuner study cells (tools/partition_smoke.py CELLS +
#: tools/calibrate_smoke.py PROBE_CELL): pruning must not move a byte
#: of any of their plans.
TUNER_CELLS = (
    ("PXOVER-48", "gige"),
    ("PXOVER-48", "ethernet100"),
    ("PXOVER-32", "vbus"),
    ("MM-32", "gige"),
    ("MM-96", "ethernet100"),
)


def _healthy_corpus(cache: str) -> int:
    checks = sanitized = 0
    for spec in HEALTHY:
        source = source_for(spec)
        for grain in GRAINS:
            for partition in PARTITIONS:
                cold = check_source(
                    source, nprocs=4, granularity=grain,
                    partition=partition, cache_dir=cache,
                )
                if not cold.clean:
                    print(f"FAIL: {spec} {grain}/{partition} not clean:\n"
                          f"{cold.summary()}")
                    return 1
                warm = check_source(
                    source, nprocs=4, granularity=grain,
                    partition=partition, cache_dir=cache,
                )
                if not warm.cached:
                    print(f"FAIL: {spec} {grain}/{partition}: warm check "
                          "missed the cache")
                    return 1
                if canonical_json(warm.to_jsonable()) != canonical_json(
                    cold.to_jsonable()
                ):
                    print(f"FAIL: {spec} {grain}/{partition}: warm report "
                          "not byte-identical")
                    return 1
                checks += 1
                # Static-clean must imply sanitizer-clean.
                prog = compile_source(
                    source, nprocs=4, granularity=grain,
                    partition=partition,
                )
                report = run_program(prog, execute=True, sanitize=True)
                if not report.sanitizer["clean"]:
                    print(f"FAIL: {spec} {grain}/{partition} is static-"
                          f"clean but sanitizer-dirty: {report.sanitizer}")
                    return 1
                sanitized += 1
    print(f"healthy corpus OK: {checks} variant(s) static-clean, warm "
          f"cache byte-identical, {sanitized} sanitizer-clean run(s)")
    return 0


def _badprog_corpus() -> int:
    manifest = json.loads((BADPROG_DIR / "manifest.json").read_text())
    for fname, spec in sorted(manifest.items()):
        source = (BADPROG_DIR / fname).read_text()
        report = check_source(source, cache_dir=None, **spec["options"])
        missing = set(spec["expected"]) - report.codes()
        if missing:
            print(f"FAIL: {fname}: expected {sorted(missing)} missing "
                  f"(got {sorted(report.codes())})")
            return 1
        prog = compile_source(source, **spec["options"])
        run = run_program(prog, execute=True, sanitize=True)
        if run.sanitizer["clean"]:
            print(f"FAIL: {fname}: sanitizer missed the seeded defect")
            return 1
    print(f"seeded-bug corpus OK: {len(manifest)} program(s) flagged "
          "statically and dynamically")
    return 0


def _tuner_pruning() -> int:
    for spec, backend in TUNER_CELLS:
        source = source_for(spec)
        kw = dict(
            nprocs=4, metric="comm", backend=backend, cache_dir=None,
            tune_partition=True,
        )
        pruned = tune_per_region(source, static_prune=True, **kw)
        full = tune_per_region(source, static_prune=False, **kw)
        if canonical_json(pruned.to_jsonable()) != canonical_json(
            full.to_jsonable()
        ):
            print(f"FAIL: {spec}/{backend}: pruned plan is not "
                  "byte-identical to the unpruned plan")
            return 1
        if not pruned.evaluated_candidates < full.evaluated_candidates:
            print(f"FAIL: {spec}/{backend}: pruning saved nothing "
                  f"({pruned.evaluated_candidates} vs "
                  f"{full.evaluated_candidates} evaluation(s))")
            return 1
        print(f"  {spec}/{backend}: plan byte-identical, "
              f"{full.evaluated_candidates} -> "
              f"{pruned.evaluated_candidates} evaluation(s) "
              f"({pruned.pruned_candidates} pruned)")
    print(f"tuner pruning OK: {len(TUNER_CELLS)} study cell(s)")
    return 0


def main() -> int:
    cache = tempfile.mkdtemp(prefix="check-smoke-")
    try:
        for stage in (lambda: _healthy_corpus(cache), _badprog_corpus,
                      _tuner_pruning):
            rc = stage()
            if rc:
                return rc
    finally:
        shutil.rmtree(cache, ignore_errors=True)
    print("check smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
