"""Wall-clock benchmark of the cross-layer simulation fast path.

Unlike the ``bench_*`` figure reproductions (which report *simulated*
seconds), this script measures **host wall-clock seconds** to compile and
simulate each workload, comparing:

* ``baseline`` — the pre-optimization configuration: legacy ``np.unique``
  LMAD enumeration (no memoization), cold compile cache, and the stepwise
  event-per-hop DES accounting (``fast_path=False``);
* ``fast`` — the optimized stack: memoized/sorted-disjoint LMAD analysis,
  compile cache (cold at start of each workload), and batched analytic
  transfer accounting (``fast_path=True``).

Both configurations must produce the **identical** simulated time — the
fast path is an accounting optimization, not a model change — and the
script asserts it before reporting a speedup.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--quick] [-o OUT]

Results are written to ``BENCH_PR1.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.compiler.analysis import lmad as lmad_mod
from repro.compiler.analysis.lmad import set_legacy_enumeration
from repro.compiler.pipeline import clear_compile_cache, compile_source
from repro.runtime.executor import run_program
from repro.vbus.params import VBUS_SKWP, cluster_for
from repro.workloads import cffzinit, mm, swim

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _workloads(quick: bool):
    out = [
        ("MM-256", mm.source(256), "fine"),
        ("SWIM-64", swim.source(64), "fine"),
        ("CFFZINIT-M9", cffzinit.source(9), "fine"),
    ]
    if not quick:
        out.insert(1, ("MM-1024", mm.source(1024), "fine"))
    return out


def _clear_analysis_caches():
    clear_compile_cache()
    lmad_mod._enumerate_impl.cache_clear()
    lmad_mod._intersect_count.cache_clear()


def _measure(source, granularity, nprocs, *, fast: bool):
    """Wall-clock seconds to compile + simulate one workload once."""
    _clear_analysis_caches()
    set_legacy_enumeration(not fast)
    try:
        params = cluster_for(nprocs, VBUS_SKWP)
        from dataclasses import replace

        params = replace(params, fast_path=fast)
        t0 = time.perf_counter()
        prog = compile_source(source, nprocs=nprocs, granularity=granularity)
        t_compile = time.perf_counter() - t0
        t1 = time.perf_counter()
        report = run_program(prog, cluster_params=params, execute=False)
        t_run = time.perf_counter() - t1
    finally:
        set_legacy_enumeration(False)
    return {
        "wall_s": t_compile + t_run,
        "compile_s": t_compile,
        "run_s": t_run,
        "simulated_s": report.total_s,
        "hw": {k: v for k, v in report.hw.items()},
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="skip the MM-1024 scale (CI smoke run)")
    ap.add_argument("-o", "--output",
                    default=os.path.join(ROOT, "BENCH_PR1.json"))
    args = ap.parse_args(argv)

    rows = []
    for name, source, granularity in _workloads(args.quick):
        for nprocs in (4, 16):
            base = _measure(source, granularity, nprocs, fast=False)
            fast = _measure(source, granularity, nprocs, fast=True)
            if fast["simulated_s"] != base["simulated_s"]:
                raise SystemExit(
                    f"{name}/{nprocs}: fast path diverged "
                    f"({fast['simulated_s']} != {base['simulated_s']})"
                )
            speedup = base["wall_s"] / fast["wall_s"]
            legs = fast["hw"].get("fast_legs", 0)
            fb = fast["hw"].get("fast_fallbacks", 0)
            rows.append({
                "workload": name,
                "nprocs": nprocs,
                "baseline_wall_s": round(base["wall_s"], 4),
                "baseline_compile_s": round(base["compile_s"], 4),
                "baseline_run_s": round(base["run_s"], 4),
                "fast_wall_s": round(fast["wall_s"], 4),
                "fast_compile_s": round(fast["compile_s"], 4),
                "fast_run_s": round(fast["run_s"], 4),
                "speedup": round(speedup, 2),
                "simulated_s": base["simulated_s"],
                "fast_legs": int(legs),
                "fast_fallbacks": int(fb),
            })
            print(
                f"{name:14s} x{nprocs:<3d} "
                f"baseline {base['wall_s']:7.3f}s  "
                f"fast {fast['wall_s']:7.3f}s  "
                f"speedup {speedup:6.2f}x  "
                f"(simulated {base['simulated_s'] * 1e3:.3f} ms, "
                f"identical)"
            )

    payload = {
        "benchmark": "bench_wallclock",
        "metric": "host wall-clock seconds to compile + simulate",
        "baseline": ("legacy LMAD enumeration, cold caches, "
                     "stepwise DES accounting"),
        "fast": ("memoized analysis, compile cache, "
                 "batched transfer accounting (fast_path=True)"),
        "rows": rows,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.output}")

    mm1024 = [r for r in rows
              if r["workload"] == "MM-1024" and r["nprocs"] == 4]
    if mm1024 and mm1024[0]["speedup"] < 5.0:
        print(f"WARNING: MM-1024 x4 speedup {mm1024[0]['speedup']}x "
              "below the 5x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
