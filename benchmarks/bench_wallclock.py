"""Wall-clock benchmark of the simulation stack, run through ``repro.sweep``.

Unlike the ``bench_*`` figure reproductions (which report *simulated*
seconds), this script measures **host wall-clock seconds** and compares
three ways of running the same benchmark suite (MM/SWIM/CFFZINIT at
nprocs 4 and 16):

* ``legacy serial`` — what this harness did before the sweep engine
  existed: for every config, clear all analysis caches, re-measure a
  stepwise baseline under legacy ``np.unique`` LMAD enumeration
  (``fast_path=False``), then re-measure the optimized stack, asserting
  the simulated times are bit-identical.  The per-config rows (including
  fast-path leg/fallback/promotion counters) are kept from this phase.
* ``sweep --jobs 4, cold cache`` — the same configs expanded into a
  ``repro.sweep`` grid and executed on the process pool with an empty
  result cache.  The stepwise re-baselining is gone (pinned separately
  by the equivalence tests), which is where most of the suite-level
  speedup comes from.
* ``sweep, warm cache`` — the same grid again: every job is a
  content-addressed cache hit.

The script also runs the grid serially into its own cold cache and
asserts the serial and ``--jobs 4`` JSONL outputs are **byte-identical**
(the sweep determinism contract, docs/SWEEP.md).

A second phase benchmarks the **per-region autotuner** (docs/AUTOTUNE.md)
against the 3-recompile global tuner it replaces: for each cell the
global baseline compiles and profiles all three grains cold, then the
pruned per-region search runs cold (analytic model + targeted profiles)
and warm (plan-cache hit).  The tuned plan's comm metric is asserted
never to lose to the best global grain.

A third phase benchmarks the **joint grain x partition search**
(``tune_per_region(tune_partition=True)``, docs/PARTITION.md) against
the naive alternative: compile and profile every grain x strategy
variant (3 x 2 = 6) from cold caches.  The joint tuner shares one
analysis cache across variants and replaces per-variant profiles with
the analytic model plus targeted probes, so its cold wall-clock must
stay at or under ``0.8x`` the naive suite while its tuned plan never
loses the comm metric to the best uniform variant.

A fourth phase benchmarks the **trace-calibrated joint search**
(``tune_per_region(calibration=...)``, docs/AUTOTUNE.md) against the
uncalibrated joint tuner on the same cells: the fitted constants let the
family-arbitration prune skip flip probes in both directions, so the
calibrated search must choose the *same plan* on every cell while
issuing no more instrumented profiles anywhere, strictly fewer on at
least one Ethernet cell, and finishing at or under ``0.85x`` the
uncalibrated suite wall-clock.  The one-time microbenchmark fit is
timed separately (it is a content-address-cached artifact, amortized
across every later tune).

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--quick] [-o OUT]

Results are written to ``BENCH_PR9.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time

from repro.compiler.analysis import lmad as lmad_mod
from repro.compiler.analysis.lmad import set_legacy_enumeration
from repro.compiler.pipeline import clear_compile_cache, compile_source
from repro.runtime.executor import run_program
from repro.sweep import run_sweep, write_jsonl
from repro.vbus.params import VBUS_SKWP, cluster_for
from repro.workloads import cffzinit, mm, swim

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

NPROCS = (4, 16)

#: (workload spec, backend) cells for the autotuner phase.  All on
#: switched GigE, where per-message latency vs redundant bytes is the
#: live trade-off (EXPERIMENTS.md); XOVER is the mixed-plan cell.
AUTOTUNE_CELLS = (
    ("XOVER-256", "gige"),
    ("MM-256", "gige"),
    ("SWIM-64x2", "gige"),
)

#: Required tuner-vs-baseline wall-clock ratio (suite-level, cold).
AUTOTUNE_RATIO_TARGET = 0.7

#: (workload spec, backend) cells for the joint grain x partition phase.
#: PXOVER is the partition-crossover kernel (triangular + stencil with
#: opposing §5.3 preferences); MM on switched GigE is the cell where the
#: paper's block-by-default rule loses to cyclic, so the joint tuner has
#: to out-tune ``auto`` there.  MM sits second so ``--quick`` (the first
#: two cells) keeps one MM cell whose shared-analysis-cache savings
#: anchor the ratio: a PXOVER cell alone sits near 1.0x structurally
#: (the joint tuner compiles 7-8 programs vs the naive sweep's 6, and
#: PXOVER compiles are too small for cache sharing to pay that back).
PARTITION_CELLS = (
    ("PXOVER-48", "gige"),
    ("MM-256", "gige"),
    ("PXOVER-48", "ethernet100"),
    ("MM-96", "ethernet100"),
)

#: Required joint-tuner-vs-naive wall-clock ratio (suite-level, cold).
PARTITION_RATIO_TARGET = 0.8

#: Required calibrated-vs-uncalibrated joint-tuner wall-clock ratio
#: (suite-level, cold plan caches, fit time excluded — the fit is a
#: cached one-time artifact shared by every tune of the same backend).
CALIBRATION_RATIO_TARGET = 0.85


def _workloads(quick: bool):
    """(sweep workload spec, Fortran source, granularity) per workload."""
    out = [
        ("MM-256", mm.source(256), "fine"),
        ("SWIM-64", swim.source(64), "fine"),
        ("CFFZINIT-9", cffzinit.source(9), "fine"),
    ]
    if not quick:
        out.insert(1, ("MM-1024", mm.source(1024), "fine"))
    return out


def _suite_grid(quick: bool):
    """The same suite as a declarative sweep grid."""
    return {
        "name": "bench-wallclock",
        "axes": {
            "workload": [w[0] for w in _workloads(quick)],
            "nprocs": list(NPROCS),
        },
        "defaults": {"backend": "vbus", "granularity": "fine"},
    }


def _clear_analysis_caches():
    clear_compile_cache()
    lmad_mod._enumerate_impl.cache_clear()
    lmad_mod._intersect_count.cache_clear()


def _measure(source, granularity, nprocs, *, fast: bool):
    """Wall-clock seconds to compile + simulate one workload once."""
    _clear_analysis_caches()
    set_legacy_enumeration(not fast)
    try:
        params = cluster_for(nprocs, VBUS_SKWP)
        from dataclasses import replace

        params = replace(params, fast_path=fast)
        t0 = time.perf_counter()
        prog = compile_source(source, nprocs=nprocs, granularity=granularity)
        t_compile = time.perf_counter() - t0
        t1 = time.perf_counter()
        report = run_program(prog, cluster_params=params, execute=False)
        t_run = time.perf_counter() - t1
    finally:
        set_legacy_enumeration(False)
    return {
        "wall_s": t_compile + t_run,
        "compile_s": t_compile,
        "run_s": t_run,
        "simulated_s": report.total_s,
        "hw": {k: v for k, v in report.hw.items()},
    }


def _legacy_suite(quick: bool):
    """The pre-sweep harness: serial, per-config cold-cache re-baselining."""
    rows = []
    total = 0.0
    for name, source, granularity in _workloads(quick):
        for nprocs in NPROCS:
            base = _measure(source, granularity, nprocs, fast=False)
            fast = _measure(source, granularity, nprocs, fast=True)
            total += base["wall_s"] + fast["wall_s"]
            if fast["simulated_s"] != base["simulated_s"]:
                raise SystemExit(
                    f"{name}/{nprocs}: fast path diverged "
                    f"({fast['simulated_s']} != {base['simulated_s']})"
                )
            speedup = base["wall_s"] / fast["wall_s"]
            hw = fast["hw"]
            rows.append({
                "workload": name,
                "nprocs": nprocs,
                "baseline_wall_s": round(base["wall_s"], 4),
                "baseline_compile_s": round(base["compile_s"], 4),
                "baseline_run_s": round(base["run_s"], 4),
                "fast_wall_s": round(fast["wall_s"], 4),
                "fast_compile_s": round(fast["compile_s"], 4),
                "fast_run_s": round(fast["run_s"], 4),
                "speedup": round(speedup, 2),
                "simulated_s": base["simulated_s"],
                "fast_legs": int(hw.get("fast_legs", 0)),
                "fast_fallbacks": int(hw.get("fast_fallbacks", 0)),
                "fast_promotions": int(hw.get("fast_promotions", 0)),
                "fast_fallback_busy": int(hw.get("fast_fallback_busy", 0)),
                "fast_fallback_peek": int(hw.get("fast_fallback_peek", 0)),
            })
            print(
                f"{name:14s} x{nprocs:<3d} "
                f"baseline {base['wall_s']:7.3f}s  "
                f"fast {fast['wall_s']:7.3f}s  "
                f"speedup {speedup:6.2f}x  "
                f"(simulated {base['simulated_s'] * 1e3:.3f} ms, "
                f"identical)"
            )
    return rows, total


def _timed_sweep(grid, *, jobs, cache_dir):
    t0 = time.perf_counter()
    result = run_sweep(grid, jobs=jobs, cache_dir=cache_dir)
    return result, time.perf_counter() - t0


def _autotune_suite(quick: bool):
    """Per-region pruned search vs the 3-recompile global baseline."""
    from repro.sweep.runner import BACKENDS
    from repro.tools.autotune import choose_granularity
    from repro.tools.tuneplan import tune_per_region
    from repro.vbus import params as P
    from repro.workloads import source_for

    cells = AUTOTUNE_CELLS[:2] if quick else AUTOTUNE_CELLS
    rows = []
    baseline_total = tuned_total = 0.0
    cache = tempfile.mkdtemp(prefix="bench-tuneplan-")
    try:
        for spec, backend in cells:
            source = source_for(spec)
            params = cluster_for(4, getattr(P, BACKENDS[backend]))

            _clear_analysis_caches()
            t0 = time.perf_counter()
            rep = choose_granularity(
                source, nprocs=4, metric="comm", cluster_params=params
            )
            baseline_s = time.perf_counter() - t0

            _clear_analysis_caches()
            t1 = time.perf_counter()
            plan = tune_per_region(
                source, nprocs=4, metric="comm", backend=backend,
                cache_dir=cache,
            )
            tuned_s = time.perf_counter() - t1

            t2 = time.perf_counter()
            warm = tune_per_region(
                source, nprocs=4, metric="comm", backend=backend,
                cache_dir=cache,
            )
            warm_s = time.perf_counter() - t2
            if not warm.cached:
                raise SystemExit(f"{spec}/{backend}: warm plan-cache miss")

            mixed_prog = compile_source(source, options=plan.options())
            tuned_comm = run_program(
                mixed_prog, cluster_params=params, execute=False
            ).comm_max_s
            best_global = min(rep.values.values())
            if tuned_comm > best_global:
                raise SystemExit(
                    f"{spec}/{backend}: tuned plan loses to best global "
                    f"({tuned_comm} > {best_global})"
                )

            baseline_total += baseline_s
            tuned_total += tuned_s
            ratio = tuned_s / baseline_s
            rows.append({
                "workload": spec,
                "backend": backend,
                "baseline_3recompile_s": round(baseline_s, 4),
                "tuner_cold_s": round(tuned_s, 4),
                "tuner_warm_s": round(warm_s, 4),
                "ratio": round(ratio, 3),
                "profile_runs": plan.profiles,
                "mixed": plan.mixed,
                "tuned_comm_s": tuned_comm,
                "best_global_comm_s": best_global,
                "strict_win": tuned_comm < best_global,
            })
            print(
                f"{spec:12s} {backend:6s} baseline {baseline_s:6.3f}s  "
                f"tuner {tuned_s:6.3f}s ({ratio:4.2f}x)  "
                f"warm {warm_s * 1e3:6.1f}ms  "
                f"profiles {plan.profiles}  "
                f"{'mixed' if plan.mixed else 'uniform'}"
                f"{' STRICT WIN' if tuned_comm < best_global else ''}"
            )
    finally:
        shutil.rmtree(cache, ignore_errors=True)
    return rows, baseline_total, tuned_total


def _partition_suite(quick: bool):
    """Joint grain x partition search vs the naive 6-recompile sweep."""
    from repro.compiler.pipeline import CompileOptions
    from repro.compiler.postpass.partition import STRATEGIES
    from repro.sweep.runner import BACKENDS, GRANULARITIES
    from repro.tools.tuneplan import tune_per_region
    from repro.vbus import params as P
    from repro.workloads import source_for

    cells = PARTITION_CELLS[:2] if quick else PARTITION_CELLS
    rows = []
    baseline_total = tuned_total = 0.0
    cache = tempfile.mkdtemp(prefix="bench-partplan-")
    try:
        for spec, backend in cells:
            source = source_for(spec)
            params = cluster_for(4, getattr(P, BACKENDS[backend]))

            # Naive baseline: every grain x strategy variant, compiled
            # and profiled from fully cold caches — what a user without
            # the joint tuner would script.
            t0 = time.perf_counter()
            naive_comm = {}
            for grain in GRANULARITIES:
                for strategy in STRATEGIES:
                    _clear_analysis_caches()
                    prog = compile_source(
                        source,
                        options=CompileOptions(
                            nprocs=4, granularity=grain, partition=strategy
                        ),
                    )
                    rep = run_program(
                        prog, cluster_params=params, execute=False
                    )
                    naive_comm[f"{grain}/{strategy}"] = rep.comm_max_s
            baseline_s = time.perf_counter() - t0

            _clear_analysis_caches()
            t1 = time.perf_counter()
            plan = tune_per_region(
                source, nprocs=4, metric="comm", backend=backend,
                cache_dir=cache, tune_partition=True,
            )
            tuned_s = time.perf_counter() - t1

            t2 = time.perf_counter()
            warm = tune_per_region(
                source, nprocs=4, metric="comm", backend=backend,
                cache_dir=cache, tune_partition=True,
            )
            warm_s = time.perf_counter() - t2
            if not warm.cached:
                raise SystemExit(
                    f"{spec}/{backend}: warm joint plan-cache miss"
                )

            mixed_prog = compile_source(source, options=plan.options())
            tuned_comm = run_program(
                mixed_prog, cluster_params=params, execute=False
            ).comm_max_s
            best_uniform = min(naive_comm.values())
            if tuned_comm > best_uniform * (1 + 1e-9):
                raise SystemExit(
                    f"{spec}/{backend}: joint plan loses to best uniform "
                    f"variant ({tuned_comm} > {best_uniform})"
                )

            baseline_total += baseline_s
            tuned_total += tuned_s
            ratio = tuned_s / baseline_s
            rows.append({
                "workload": spec,
                "backend": backend,
                "baseline_6recompile_s": round(baseline_s, 4),
                "tuner_cold_s": round(tuned_s, 4),
                "tuner_warm_s": round(warm_s, 4),
                "ratio": round(ratio, 3),
                "profile_runs": plan.profiles,
                "mixed": plan.mixed,
                "partition_map": {
                    str(k): v for k, v in sorted(plan.partition_map.items())
                },
                "tuned_comm_s": tuned_comm,
                "best_uniform_comm_s": best_uniform,
                "strict_win": tuned_comm < best_uniform,
            })
            print(
                f"{spec:12s} {backend:12s} naive x6 {baseline_s:6.3f}s  "
                f"joint {tuned_s:6.3f}s ({ratio:4.2f}x)  "
                f"warm {warm_s * 1e3:6.1f}ms  "
                f"profiles {plan.profiles}  "
                f"{'mixed' if plan.mixed else 'uniform'}"
                f"{' STRICT WIN' if tuned_comm < best_uniform else ''}"
            )
    finally:
        shutil.rmtree(cache, ignore_errors=True)
    return rows, baseline_total, tuned_total


def _calibration_suite(quick: bool):
    """Calibrated vs uncalibrated joint tuner on the partition cells."""
    from repro.sweep.runner import BACKENDS
    from repro.tools.calibrate import calibrate
    from repro.tools.tuneplan import tune_per_region
    from repro.vbus import params as P
    from repro.workloads import source_for

    cells = PARTITION_CELLS[:2] if quick else PARTITION_CELLS
    rows = []
    uncal_total = cal_total = fit_total = 0.0
    cache = tempfile.mkdtemp(prefix="bench-calib-")
    try:
        models = {}
        for _spec, backend in cells:
            if backend not in models:
                t0 = time.perf_counter()
                models[backend] = calibrate(backend, nprocs=4, cache_dir=cache)
                fit_total += time.perf_counter() - t0
        for spec, backend in cells:
            source = source_for(spec)
            params = cluster_for(4, getattr(P, BACKENDS[backend]))
            model = models[backend]

            _clear_analysis_caches()
            t0 = time.perf_counter()
            uncal = tune_per_region(
                source, nprocs=4, metric="comm", backend=backend,
                cache_dir=None, tune_partition=True,
            )
            uncal_s = time.perf_counter() - t0

            _clear_analysis_caches()
            t1 = time.perf_counter()
            cal = tune_per_region(
                source, nprocs=4, metric="comm", backend=backend,
                cache_dir=None, tune_partition=True, calibration=model,
            )
            cal_s = time.perf_counter() - t1

            # Calibration may only change how *fast* the search decides,
            # never what it decides on these cells.
            same_plan = (
                cal.default_grain == uncal.default_grain
                and cal.grain_map == uncal.grain_map
                and cal.partition_map == uncal.partition_map
            )
            if not same_plan:
                raise SystemExit(
                    f"{spec}/{backend}: calibrated plan diverged "
                    f"({cal.options()} != {uncal.options()})"
                )
            prog = compile_source(source, options=cal.options())
            digest = run_program(
                prog, cluster_params=params, execute=True
            ).to_jsonable()["array_digest"]
            uncal_prog = compile_source(source, options=uncal.options())
            uncal_digest = run_program(
                uncal_prog, cluster_params=params, execute=True
            ).to_jsonable()["array_digest"]
            if digest != uncal_digest:
                raise SystemExit(
                    f"{spec}/{backend}: calibrated plan digest diverged"
                )
            if cal.profiles > uncal.profiles:
                raise SystemExit(
                    f"{spec}/{backend}: calibration added profiles "
                    f"({cal.profiles} > {uncal.profiles})"
                )

            uncal_total += uncal_s
            cal_total += cal_s
            ratio = cal_s / uncal_s
            rows.append({
                "workload": spec,
                "backend": backend,
                "uncalibrated_s": round(uncal_s, 4),
                "calibrated_s": round(cal_s, 4),
                "ratio": round(ratio, 3),
                "uncalibrated_profiles": uncal.profiles,
                "calibrated_profiles": cal.profiles,
                "plan_identical": True,
                "digest_identical": True,
            })
            print(
                f"{spec:12s} {backend:12s} uncal {uncal_s:6.3f}s "
                f"({uncal.profiles}p)  cal {cal_s:6.3f}s "
                f"({cal.profiles}p, {ratio:4.2f}x)  plan identical"
            )
        fewer = [
            r for r in rows
            if r["calibrated_profiles"] < r["uncalibrated_profiles"]
        ]
        if not fewer:
            raise SystemExit(
                "calibration pruned zero flip probes on every cell"
            )
    finally:
        shutil.rmtree(cache, ignore_errors=True)
    return rows, uncal_total, cal_total, fit_total


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="skip the MM-1024 scale (CI smoke run)")
    ap.add_argument("-o", "--output",
                    default=os.path.join(ROOT, "BENCH_PR9.json"))
    args = ap.parse_args(argv)

    print("== legacy serial harness (per-config cold-cache re-baselining) ==")
    rows, legacy_s = _legacy_suite(args.quick)
    print(f"legacy serial suite: {legacy_s:.3f}s")

    grid = _suite_grid(args.quick)
    tmp = tempfile.mkdtemp(prefix="bench-sweep-")
    try:
        print("\n== sweep engine ==")
        serial_dir = os.path.join(tmp, "serial")
        jobs4_dir = os.path.join(tmp, "jobs4")
        serial_res, serial_s = _timed_sweep(grid, jobs=1, cache_dir=serial_dir)
        jobs4_res, jobs4_s = _timed_sweep(grid, jobs=4, cache_dir=jobs4_dir)
        warm_res, warm_s = _timed_sweep(grid, jobs=4, cache_dir=jobs4_dir)

        serial_out = os.path.join(tmp, "serial.jsonl")
        jobs4_out = os.path.join(tmp, "jobs4.jsonl")
        write_jsonl(serial_res.rows, serial_out)
        write_jsonl(jobs4_res.rows, jobs4_out)
        with open(serial_out, "rb") as fh:
            serial_bytes = fh.read()
        with open(jobs4_out, "rb") as fh:
            jobs4_bytes = fh.read()
        if serial_bytes != jobs4_bytes:
            raise SystemExit(
                "sweep determinism violated: serial and --jobs 4 JSONL differ"
            )
        if warm_res.hits != len(warm_res.rows):
            raise SystemExit(
                f"warm sweep expected all cache hits, got "
                f"{warm_res.hits}/{len(warm_res.rows)}"
            )
        bad = [r for r in jobs4_res.rows if r["status"] != "ok"]
        if bad:
            raise SystemExit(f"sweep jobs failed: {bad}")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    print("\n== per-region autotuner vs 3-recompile global baseline ==")
    tune_rows, tune_baseline_s, tune_cold_s = _autotune_suite(args.quick)
    tune_ratio = tune_cold_s / tune_baseline_s
    print(f"autotune suite: baseline {tune_baseline_s:.3f}s, "
          f"pruned tuner {tune_cold_s:.3f}s "
          f"({tune_ratio:.2f}x, target <= {AUTOTUNE_RATIO_TARGET}x)")

    print("\n== joint grain x partition tuner vs naive 6-recompile sweep ==")
    part_rows, part_baseline_s, part_cold_s = _partition_suite(args.quick)
    part_ratio = part_cold_s / part_baseline_s
    print(f"partition suite: naive {part_baseline_s:.3f}s, "
          f"joint tuner {part_cold_s:.3f}s "
          f"({part_ratio:.2f}x, target <= {PARTITION_RATIO_TARGET}x)")

    print("\n== calibrated vs uncalibrated joint tuner ==")
    cal_rows, cal_uncal_s, cal_cold_s, cal_fit_s = _calibration_suite(
        args.quick
    )
    cal_ratio = cal_cold_s / cal_uncal_s
    print(f"calibration suite: uncalibrated {cal_uncal_s:.3f}s, "
          f"calibrated {cal_cold_s:.3f}s "
          f"({cal_ratio:.2f}x, target <= {CALIBRATION_RATIO_TARGET}x; "
          f"one-time fit {cal_fit_s:.3f}s, cached)")

    cold_speedup = legacy_s / jobs4_s
    warm_speedup = legacy_s / warm_s
    print(f"sweep serial cold : {serial_s:7.3f}s")
    print(f"sweep --jobs 4    : {jobs4_s:7.3f}s  "
          f"({cold_speedup:6.2f}x vs legacy serial)")
    print(f"sweep warm cache  : {warm_s:7.3f}s  "
          f"({warm_speedup:6.2f}x vs legacy serial, "
          f"{warm_res.hits}/{len(warm_res.rows)} hits)")
    print("serial vs --jobs 4 JSONL: byte-identical")

    payload = {
        "benchmark": "bench_wallclock",
        "metric": "host wall-clock seconds to compile + simulate the suite",
        "legacy": ("pre-sweep harness: serial, per-config cold caches, "
                   "stepwise baseline re-measurement under legacy LMAD "
                   "enumeration"),
        "sweep": ("repro.sweep grid on a ProcessPoolExecutor with a "
                  "content-addressed result cache (docs/SWEEP.md)"),
        "suite": {
            "configs": len(rows),
            "legacy_serial_s": round(legacy_s, 4),
            "sweep_serial_cold_s": round(serial_s, 4),
            "sweep_jobs4_cold_s": round(jobs4_s, 4),
            "sweep_jobs4_warm_s": round(warm_s, 4),
            "cold_speedup": round(cold_speedup, 2),
            "warm_speedup": round(warm_speedup, 2),
            "parallel_vs_serial_sweep": round(serial_s / jobs4_s, 2),
            "byte_identical": True,
            "warm_cache_hits": warm_res.hits,
            "note": ("cold/warm speedups compare the sweep engine against "
                     "the legacy serial harness above; this host has one "
                     "CPU core, so --jobs 4 wins come from dropping the "
                     "stepwise re-baselining and from cache hits, not "
                     "core-level parallelism"),
        },
        "autotune": {
            "baseline": ("global tuner: compile + timing-mode profile at "
                         "all three grains, cold caches"),
            "tuner": ("per-region pruned search (docs/AUTOTUNE.md): "
                      "analytic cost model + targeted instrumented "
                      "profiles, plan cache cold"),
            "cells": len(tune_rows),
            "baseline_s": round(tune_baseline_s, 4),
            "tuner_cold_s": round(tune_cold_s, 4),
            "ratio": round(tune_ratio, 3),
            "ratio_target": AUTOTUNE_RATIO_TARGET,
            "rows": tune_rows,
        },
        "partition_autotune": {
            "baseline": ("naive sweep: compile + timing-mode profile of "
                         "every grain x strategy variant (3 x 2 = 6), "
                         "cold caches per variant"),
            "tuner": ("joint per-region grain x partition search "
                      "(docs/PARTITION.md): shared analysis caches, "
                      "analytic cost model with a fence-skew imbalance "
                      "term, targeted probes, plan cache cold"),
            "cells": len(part_rows),
            "baseline_s": round(part_baseline_s, 4),
            "tuner_cold_s": round(part_cold_s, 4),
            "ratio": round(part_ratio, 3),
            "ratio_target": PARTITION_RATIO_TARGET,
            "rows": part_rows,
        },
        "calibration": {
            "baseline": ("uncalibrated joint tuner: static §5.6 analytic "
                         "model, directional family-arbitration prune"),
            "tuner": ("calibrated joint tuner (docs/AUTOTUNE.md): "
                      "trace-fitted constants re-price the family "
                      "champions, symmetric clear-margin prune skips "
                      "flip probes both ways; plans must stay identical"),
            "cells": len(cal_rows),
            "uncalibrated_s": round(cal_uncal_s, 4),
            "calibrated_s": round(cal_cold_s, 4),
            "fit_s": round(cal_fit_s, 4),
            "ratio": round(cal_ratio, 3),
            "ratio_target": CALIBRATION_RATIO_TARGET,
            "profiles_pruned": sum(
                r["uncalibrated_profiles"] - r["calibrated_profiles"]
                for r in cal_rows
            ),
            "rows": cal_rows,
        },
        "rows": rows,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.output}")

    rc = 0
    if not args.quick:
        mm1024 = [r for r in rows
                  if r["workload"] == "MM-1024" and r["nprocs"] == 4]
        if mm1024 and mm1024[0]["speedup"] < 5.0:
            print(f"WARNING: MM-1024 x4 speedup {mm1024[0]['speedup']}x "
                  "below the 5x target")
            rc = 1
        if cold_speedup < 3.0:
            print(f"WARNING: sweep --jobs 4 cold speedup {cold_speedup:.2f}x "
                  "below the 3x target")
            rc = 1
        if warm_speedup < 10.0:
            print(f"WARNING: sweep warm speedup {warm_speedup:.2f}x "
                  "below the 10x target")
            rc = 1
    if tune_ratio > AUTOTUNE_RATIO_TARGET:
        print(f"WARNING: autotune ratio {tune_ratio:.2f}x above the "
              f"{AUTOTUNE_RATIO_TARGET}x target")
        rc = 1
    if part_ratio > PARTITION_RATIO_TARGET:
        print(f"WARNING: partition autotune ratio {part_ratio:.2f}x above "
              f"the {PARTITION_RATIO_TARGET}x target")
        rc = 1
    if cal_ratio > CALIBRATION_RATIO_TARGET:
        print(f"WARNING: calibration ratio {cal_ratio:.2f}x above the "
              f"{CALIBRATION_RATIO_TARGET}x target")
        rc = 1
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
