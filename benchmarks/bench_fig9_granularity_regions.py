"""Figure 9: fine/middle/coarse regions for a strided access split
across two processors, plus the middle-vs-fine crossover sweep.

Part 1 regenerates the figure: the stride-3 pattern inside groups of 14
(``A(14,*)``), its exact (fine) transfers, the per-group bounding runs
(middle), and the single coarse region — with transfer counts matching
the §5.6 formulas.

Part 2 sweeps the write stride of a synthetic kernel to locate the
regime boundary the paper's Table 2 straddles: small strides favour the
middle grain (contiguous DMA beats per-element PIO despite redundant
bytes), large strides flip it.
"""

from repro.compiler.analysis.lmad import LMAD
from repro.compiler.pipeline import compile_source
from repro.compiler.postpass.granularity import (
    COARSE,
    FINE,
    MIDDLE,
    plan_bytes,
    plan_transfers,
)
from repro.runtime.executor import run_program
from repro.workloads import synthetic

from benchmarks.benchutil import emit_table, run_once


def _measure():
    # Part 1: the figure's LMAD.
    lmad = LMAD.from_counts("A", 0, [(3, 5), (14, 2)])
    plans = {g: plan_transfers(lmad, g) for g in (FINE, MIDDLE, COARSE)}

    # Part 2: stride sweep on a real compiled workload (all phases
    # written so approximate collects stay safe — the CFFZINIT shape).
    sweep = {}
    total = 2048
    for stride in (1, 2, 3, 4, 8):
        src = synthetic.phased_stride_kernel(total // stride, stride)
        times = {}
        for grain in (FINE, MIDDLE, COARSE):
            prog = compile_source(src, nprocs=4, granularity=grain)
            r = run_program(prog, execute=False)
            times[grain] = r.comm_max_s
        sweep[stride] = times
    return lmad, plans, sweep


def _strip(transfers, extent):
    mask = ["."] * extent
    for t in transfers:
        for i in t.indices():
            mask[i] = "#"
    return "".join(mask)


def test_figure9_granularity_regions(benchmark):
    lmad, plans, sweep = run_once(benchmark, _measure)
    extent = lmad.extent

    lines = [f"LMAD: {lmad}"]
    for g in (FINE, MIDDLE, COARSE):
        ts = plans[g]
        lines.append(
            f"{g:7s}: {len(ts)} transfer(s), {plan_bytes(ts)} bytes   "
            f"{_strip(ts, extent)}"
        )
    lines.append("")
    lines.append("stride sweep, comm time (ms) on 4 nodes:")
    lines.append(f"{'stride':>7s} {'fine':>9s} {'middle':>9s} {'coarse':>9s}")
    for stride, times in sorted(sweep.items()):
        lines.append(
            f"{stride:7d} {times[FINE]*1e3:9.3f} {times[MIDDLE]*1e3:9.3f} "
            f"{times[COARSE]*1e3:9.3f}"
        )
    emit_table(benchmark, "fig9_granularity_regions", lines)

    # Figure shape: the §5.6 transfer-count formulas.
    assert len(plans[FINE]) == 2 and all(t.stride == 3 for t in plans[FINE])
    assert len(plans[MIDDLE]) == 2 and all(t.contiguous for t in plans[MIDDLE])
    assert len(plans[COARSE]) == 1
    assert plan_bytes(plans[FINE]) < plan_bytes(plans[MIDDLE])
    assert plan_bytes(plans[MIDDLE]) <= plan_bytes(plans[COARSE])

    # Crossover shape: at stride 2, middle beats fine (CFFZINIT's
    # regime); by stride 8 the redundant bytes flip it (the regime where
    # the paper saw middle losing); coarse aggregation always wins here.
    assert sweep[2][MIDDLE] < sweep[2][FINE]
    assert sweep[8][MIDDLE] > sweep[8][FINE]
    gain = {s: sweep[s][FINE] / sweep[s][MIDDLE] for s in sweep if s > 1}
    assert gain[8] < gain[2]
    for s, times in sweep.items():
        assert times[COARSE] <= min(times[FINE], times[MIDDLE]) * 1.001
