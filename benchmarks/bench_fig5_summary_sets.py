"""Figure 5: summary sets of a triply nested loop.

The paper's example: a J/K/I nest with ``A(I,J,K) = ... B(I,2*J,K+1)``.
At every nesting level the summary set classifies A's regions WriteFirst
and B's ReadOnly, with the LMADs expanding by one dimension per level —
exactly the per-statement -> per-loop aggregation of §4.2.
"""

from repro.compiler.analysis.access import LoopCtx
from repro.compiler.analysis.summary import (
    READ_ONLY,
    WRITE_FIRST,
    summarize_loop,
    summarize_statements,
)
from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse

from benchmarks.benchutil import emit_table, run_once

SRC = """
      PROGRAM F5
      REAL*8 A(100,100,100), B(100,200,101)
      DO J = 1, 100
        DO K = 1, 100
          DO I = 1, 100
            A(I,J,K) = B(I,2*J,K+1)
          ENDDO
        ENDDO
      ENDDO
      END
"""


def _measure():
    unit = lower_program(parse(SRC)).main
    loop_j = unit.body[0]
    loop_k = loop_j.body[0]
    loop_i = loop_k.body[0]

    ctx_j = LoopCtx("J", 1, 100, 1)
    ctx_k = LoopCtx("K", 1, 100, 1)

    levels = {}
    # Statement level (inside all three loops, indices symbolic -> bound).
    stmt = summarize_statements(
        loop_i.body, unit.symtab,
        [ctx_j, ctx_k, LoopCtx("I", 1, 100, 1)],
    )
    levels["loop I"] = stmt
    lk, _ = summarize_loop(loop_k, unit.symtab, [ctx_j])
    levels["loop K"] = lk
    lj, _ = summarize_loop(loop_j, unit.symtab)
    levels["loop J"] = lj
    return levels


def test_figure5_summary_sets(benchmark):
    levels = run_once(benchmark, _measure)
    lines = []
    for name, summary in levels.items():
        a = summary.arrays["A"]
        b = summary.arrays["B"]
        lines.append(f"summary set of {name}:")
        lines.append(f"  WriteFirst : {a.writes[0]}")
        lines.append(f"  ReadOnly   : {b.reads[0]}")
    emit_table(benchmark, "fig5_summary_sets", lines)

    for summary in levels.values():
        assert summary.arrays["A"].classification == WRITE_FIRST
        assert summary.arrays["B"].classification == READ_ONLY
    # Strides of A at the outermost level: 1 (I), 100 (J), 10000 (K).
    a = levels["loop J"].arrays["A"].writes[0]
    assert sorted(d.stride for d in a.dims) == [1, 100, 10000]
    # B's J movement doubles: stride 200 appears.
    b = levels["loop J"].arrays["B"].reads[0]
    assert 200 in {d.stride for d in b.dims}
    # B's base offset: J=1 -> column 2 (one row of 100) plus K=1 -> plane
    # 2 (one plane of 100*200).
    assert b.base == 100 + 100 * 200
