"""Section 2.1: the V-Bus card offers ~4x higher bandwidth and ~4x lower
latency than a Fast Ethernet card, and its hardware broadcast beats both
the software tree and the shared Ethernet segment.
"""

import numpy as np
import pytest

from repro.mpi2 import Mpi2Runtime
from repro.vbus import ETHERNET_100, build_cluster
from repro.vbus.params import ClusterParams, cluster_for

from benchmarks.benchutil import emit_table, run_once


def _p2p_time(cluster, nbytes):
    proc = cluster.sim.process(cluster.transfer(0, 1, nbytes))
    return cluster.sim.run(until=proc).total_s


def _bcast_time(params, nbytes):
    cl = build_cluster(4, params=params)
    rt = Mpi2Runtime(cl)
    done = {}

    def body(rank):
        comm = rt.comm(rank)
        data = np.zeros(max(1, nbytes // 8)) if rank == 0 else None
        yield from comm.bcast(data, root=0)
        done[rank] = cl.sim.now

    for r in range(4):
        cl.sim.process(body(r), name=f"r{r}")
    cl.sim.run()
    return max(done.values())


def _measure():
    out = {}
    for nbytes in (64, 4096, 1 << 20):
        out[("vbus", nbytes)] = _p2p_time(build_cluster(4), nbytes)
        out[("ether", nbytes)] = _p2p_time(
            build_cluster(4, params=cluster_for(4, ETHERNET_100)), nbytes
        )
    out["bcast_vbus"] = _bcast_time(None, 4096)
    out["bcast_tree"] = _bcast_time(
        cluster_for(4, ClusterParams(vbus_broadcast=False)), 4096
    )
    out["bcast_ether"] = _bcast_time(cluster_for(4, ETHERNET_100), 4096)
    return out


def test_vbus_vs_ethernet(benchmark):
    rows = run_once(benchmark, _measure)
    lines = [
        f"{'size(B)':>9s} {'V-Bus(us)':>10s} {'Ether(us)':>10s} {'ratio':>6s}",
        "-" * 40,
    ]
    for nbytes in (64, 4096, 1 << 20):
        tv = rows[("vbus", nbytes)]
        te = rows[("ether", nbytes)]
        lines.append(
            f"{nbytes:9d} {tv * 1e6:10.1f} {te * 1e6:10.1f} {te / tv:6.2f}"
        )
    lines.append("")
    lines.append("4 KiB broadcast to 3 peers:")
    lines.append(f"  V-Bus hardware bus : {rows['bcast_vbus'] * 1e6:8.1f} us")
    lines.append(f"  software tree      : {rows['bcast_tree'] * 1e6:8.1f} us")
    lines.append(f"  Fast Ethernet      : {rows['bcast_ether'] * 1e6:8.1f} us")
    emit_table(benchmark, "sec2_vbus_latency", lines)

    # Small-message latency ratio ~4x.
    small = rows[("ether", 64)] / rows[("vbus", 64)]
    assert 3.0 <= small <= 5.5
    # Large-message bandwidth ratio ~4x (50 vs 12.5 MB/s).
    big = rows[("ether", 1 << 20)] / rows[("vbus", 1 << 20)]
    assert big == pytest.approx(4.0, rel=0.2)
    # The hardware broadcast beats both alternatives.
    assert rows["bcast_vbus"] < rows["bcast_tree"]
    assert rows["bcast_vbus"] < rows["bcast_ether"]
