"""Table 2: communication time at fine/middle/coarse granularity for
MM(1024^2), SWIM(ITMAX=1), and CFFZINIT(M=11).

Paper's rows (seconds):

    MM(1024x1024)     fine 0.72     middle 0.89      coarse 0.01128
    SWIM(ITMAX=1)     fine 0.20590  middle * (poor)  coarse 0.072166
    CFFZINIT(M=11)    fine 0.3584   middle 0.0768    coarse 0.0068

Two measurements are reported per cell: the *CPU* communication time
(message-queue/DMA-descriptor/PIO work, the natural metric under the
paper's DMA-overlap design) and the elapsed in-MPI time of the busiest
rank.  Asserted shapes:

* CFFZINIT: fine > middle > coarse (stride-2 LMADs; middle trades 50%
  redundant bytes for contiguous DMA and wins; coarse aggregates);
* MM: coarse beats fine on CPU-side communication time (message
  aggregation); middle buys nothing over fine (our MM fine regions are
  already unit-stride — the paper saw +17%, see EXPERIMENTS.md);
* SWIM: middle buys nothing ("poor results at the Middle grain"), and
  coarse never loses to fine.
"""

import pytest

from repro.sweep import run_sweep

from benchmarks.benchutil import emit_table, run_once

GRAINS = ("fine", "middle", "coarse")
PAPER = {
    ("MM", "fine"): "0.72", ("MM", "middle"): "0.89", ("MM", "coarse"): "0.01128",
    ("SWIM", "fine"): "0.20590", ("SWIM", "middle"): "*", ("SWIM", "coarse"): "0.072166",
    ("CFFZINIT", "fine"): "0.3584", ("CFFZINIT", "middle"): "0.0768", ("CFFZINIT", "coarse"): "0.0068",
}


#: Display name -> sweep workload spec (docs/SWEEP.md grammar).
SPECS = {"MM": "MM-1024", "SWIM": "SWIM-512x1", "CFFZINIT": "CFFZINIT-11"}


def _measure():
    # The 3x3 grid runs through repro.sweep; cache_dir=None because a
    # benchmark that asserts on simulated values must re-measure rather
    # than replay version-keyed cached rows across source edits.
    grid = {
        "name": "table2-granularity",
        "axes": {
            "workload": list(SPECS.values()),
            "granularity": list(GRAINS),
        },
    }
    result = run_sweep(grid, cache_dir=None)
    by_spec = {name: spec for name, spec in SPECS.items()}
    out = {}
    for row in result.rows:
        assert row["status"] == "ok", row
        name = next(n for n, s in by_spec.items() if s == row["workload"])
        res = row["result"]
        out[(name, row["granularity"])] = (
            res["comm_cpu_max_s"],
            res["comm_max_s"],
            res["messages"],
            res["strided_transfers"],
        )
    return out


def test_table2_communication_granularity(benchmark):
    rows = run_once(benchmark, _measure)

    lines = [
        f"{'workload':10s} {'grain':7s} {'commCPU(s)':>11s} {'commMax(s)':>11s}"
        f" {'msgs':>7s} {'strided':>8s} {'paper(s)':>9s}",
        "-" * 68,
    ]
    for name in ("MM", "SWIM", "CFFZINIT"):
        for grain in GRAINS:
            cpu, elapsed, msgs, strided = rows[(name, grain)]
            lines.append(
                f"{name:10s} {grain:7s} {cpu:11.5f} {elapsed:11.5f}"
                f" {msgs:7d} {strided:8d} {PAPER[(name, grain)]:>9s}"
            )
    emit_table(benchmark, "table2_granularity", lines)

    cpu = {k: v[0] for k, v in rows.items()}
    elapsed = {k: v[1] for k, v in rows.items()}

    # CFFZINIT: strict fine > middle > coarse on both metrics.
    assert cpu[("CFFZINIT", "fine")] > cpu[("CFFZINIT", "middle")]
    assert cpu[("CFFZINIT", "middle")] >= cpu[("CFFZINIT", "coarse")]
    assert elapsed[("CFFZINIT", "fine")] > elapsed[("CFFZINIT", "middle")]
    assert elapsed[("CFFZINIT", "middle")] > elapsed[("CFFZINIT", "coarse")]
    # Fine grain really used strided (PIO) primitives for CFFZINIT.
    assert rows[("CFFZINIT", "fine")][3] > 0
    assert rows[("CFFZINIT", "middle")][3] == 0

    # MM: coarse aggregation wins on CPU-side comm; middle ~ fine.
    assert cpu[("MM", "coarse")] < cpu[("MM", "fine")]
    assert cpu[("MM", "middle")] == pytest.approx(cpu[("MM", "fine")], rel=0.05)

    # SWIM: middle buys nothing; coarse does not lose.
    assert cpu[("SWIM", "middle")] >= 0.95 * cpu[("SWIM", "fine")]
    assert cpu[("SWIM", "coarse")] <= cpu[("SWIM", "fine")] * 1.001
