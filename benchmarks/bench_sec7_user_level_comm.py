"""Section 7: user-level communication — the MPI-2 library "performs
user-level communication rather than system-level communication which
incurs additional overhead for context switching between the user mode
and the kernel mode".

Compares per-message cost and a full MM run with the shared
driver/daemon message queue (user-level) against the same NIC with the
queue un-shared (extra copy + kernel context switch per message).
"""

import pytest

from repro.compiler.pipeline import compile_source
from repro.runtime.executor import run_program
from repro.vbus import build_cluster
from repro.vbus.params import ClusterParams, NicParams, cluster_for
from repro.workloads import mm

from benchmarks.benchutil import emit_table, run_once

KERNEL_PARAMS = cluster_for(4, ClusterParams(nic=NicParams(shared_queue=False)))


def _msg_time(params, nbytes):
    cl = build_cluster(4, params=params)
    proc = cl.sim.process(cl.transfer(0, 1, nbytes))
    return cl.sim.run(until=proc).total_s


def _measure():
    out = {}
    for nbytes in (64, 4096):
        out[("user", nbytes)] = _msg_time(None, nbytes)
        out[("kernel", nbytes)] = _msg_time(KERNEL_PARAMS, nbytes)
    prog = compile_source(mm.source(128), nprocs=4, granularity="fine")
    out[("mm", "user")] = run_program(prog, execute=False).comm_max_s
    out[("mm", "kernel")] = run_program(
        prog, cluster_params=KERNEL_PARAMS, execute=False
    ).comm_max_s
    return out


def test_user_level_communication(benchmark):
    rows = run_once(benchmark, _measure)
    lines = [
        f"{'message':>9s} {'user-level(us)':>15s} {'kernel-level(us)':>17s}"
        f" {'overhead':>9s}",
        "-" * 55,
    ]
    for nbytes in (64, 4096):
        u = rows[("user", nbytes)]
        k = rows[("kernel", nbytes)]
        lines.append(
            f"{nbytes:9d} {u * 1e6:15.1f} {k * 1e6:17.1f} {k / u:8.2f}x"
        )
    lines.append("")
    lines.append(
        f"MM(128) comm time: user-level {rows[('mm', 'user')] * 1e3:.3f} ms, "
        f"kernel-level {rows[('mm', 'kernel')] * 1e3:.3f} ms"
    )
    emit_table(benchmark, "sec7_user_level_comm", lines)

    ctx = KERNEL_PARAMS.nic.context_switch_s
    for nbytes in (64, 4096):
        delta = rows[("kernel", nbytes)] - rows[("user", nbytes)]
        assert delta == pytest.approx(ctx, rel=0.01)
    # Small messages suffer the most (the overhead dominates).
    small = rows[("kernel", 64)] / rows[("user", 64)]
    big = rows[("kernel", 4096)] / rows[("user", 4096)]
    assert small > big
    assert rows[("mm", "kernel")] > rows[("mm", "user")]
