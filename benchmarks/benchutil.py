"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables/figures: it runs
the simulation once (simulations are deterministic — wall-clock rounds
would only re-measure Python), prints the regenerated rows next to the
paper's numbers, asserts the qualitative *shape* the paper reports, and
stores the rows in ``benchmark.extra_info`` and under
``benchmarks/results/``.
"""

import os
from typing import Callable, List

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_once(benchmark, fn: Callable):
    """Run ``fn`` exactly once under pytest-benchmark accounting."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def emit_table(benchmark, name: str, lines: List[str]) -> None:
    """Print the regenerated table and persist it."""
    text = "\n".join(lines)
    print(f"\n===== {name} =====")
    print(text)
    benchmark.extra_info["table"] = text
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
