"""Table 1: MM speedups for 1/2/4 nodes at 256^2 / 512^2 / 1024^2.

Paper's measured speedups (Execution_seq / Execution_par):

    nodes \\ size   256x256   512x512   1024x1024
        1            0.96      0.96       0.96
        2            1.086     1.53       1.60
        4            1.75      2.74       3.033

Shape requirements asserted below: ~0.96 on one node (SPMD code
overhead), speedup strictly increasing with node count, speedup
non-decreasing with matrix size at fixed node count, and below the ideal
linear bound.  (Our simulated interconnect is better-balanced relative
to compute than the 2001 FPGA prototype, so absolute multi-node numbers
run higher than the paper's — see EXPERIMENTS.md.)
"""

import pytest

from repro.compiler.pipeline import compile_source
from repro.runtime.executor import run_sequential
from repro.sweep import run_sweep
from repro.workloads import mm

from benchmarks.benchutil import emit_table, run_once

SIZES = (256, 512, 1024)
NODES = (1, 2, 4)
PAPER = {
    (1, 256): 0.96, (1, 512): 0.96, (1, 1024): 0.96,
    (2, 256): 1.086, (2, 512): 1.53, (2, 1024): 1.60,
    (4, 256): 1.75, (4, 512): 2.74, (4, 1024): 3.033,
}


def _measure():
    # Sequential baselines stay inline (the sweep runner only models SPMD
    # cluster runs); the 3x3 parallel grid goes through repro.sweep.
    # cache_dir=None: the cache key ignores source edits within a version,
    # so a benchmark that *asserts* on simulated values must re-measure.
    seq = {
        n: run_sequential(
            compile_source(mm.source(n), nprocs=1), execute=False
        ).total_s
        for n in SIZES
    }
    grid = {
        "name": "table1-mm-speedups",
        "axes": {
            "workload": [f"MM-{n}" for n in SIZES],
            "nprocs": list(NODES),
        },
        "defaults": {"granularity": "coarse"},
    }
    result = run_sweep(grid, cache_dir=None)
    rows = {}
    for row in result.rows:
        assert row["status"] == "ok", row
        n = int(row["workload"].split("-")[1])
        rows[(row["nprocs"], n)] = seq[n] / row["result"]["simulated_s"]
    return rows


def test_table1_mm_speedups(benchmark):
    rows = run_once(benchmark, _measure)

    lines = [
        f"{'nodes':>5s} | " + " | ".join(f"{n}x{n} meas (paper)".rjust(22) for n in SIZES),
        "-" * 80,
    ]
    for nodes in NODES:
        cells = [
            f"{rows[(nodes, n)]:6.3f} ({PAPER[(nodes, n)]:5.3f})".rjust(22)
            for n in SIZES
        ]
        lines.append(f"{nodes:>5d} | " + " | ".join(cells))
    emit_table(benchmark, "table1_mm_speedups", lines)

    # Shape assertions.
    for n in SIZES:
        assert rows[(1, n)] == pytest.approx(0.96, abs=0.01)  # paper row 1
        assert rows[(1, n)] < rows[(2, n)] < rows[(4, n)]
        assert rows[(2, n)] < 2.0
        assert rows[(4, n)] < 4.0
    for nodes in (2, 4):
        assert rows[(nodes, 256)] <= rows[(nodes, 512)] + 1e-9
        assert rows[(nodes, 512)] <= rows[(nodes, 1024)] + 1e-9
