"""Ablation: the AVPG's redundant-communication elimination (§5.2).

Compiles multi-loop programs with the AVPG filtering enabled and
disabled and compares message counts, bytes, and communication time.
SWIM's time-stepping structure is where the AVPG pays: slave copies of
the stencil arrays stay valid between sweeps, so only halo/boundary
regions are re-scattered.
"""

from repro.compiler.pipeline import compile_source
from repro.runtime.executor import run_program
from repro.workloads import swim, synthetic

from benchmarks.benchutil import emit_table, run_once

CASES = [
    ("SWIM 64, 3 steps", lambda: swim.source(64, 3)),
    ("AVPG chain", lambda: synthetic.avpg_chain(8192)),
]


def _measure():
    out = {}
    for name, make in CASES:
        src = make()
        for avpg in (True, False):
            prog = compile_source(
                src, nprocs=4, granularity="fine", avpg=avpg
            )
            r = run_program(prog, execute=False)
            out[(name, avpg)] = (
                int(r.hw["messages"]),
                int(r.hw["bytes"]),
                r.comm_max_s,
            )
    return out


def test_ablation_avpg(benchmark):
    rows = run_once(benchmark, _measure)
    lines = [
        f"{'case':18s} {'AVPG':>5s} {'msgs':>7s} {'bytes':>10s} {'comm(ms)':>9s}",
        "-" * 55,
    ]
    for name, _ in CASES:
        for avpg in (True, False):
            msgs, nbytes, comm = rows[(name, avpg)]
            lines.append(
                f"{name:18s} {'on' if avpg else 'off':>5s} {msgs:7d}"
                f" {nbytes:10d} {comm * 1e3:9.3f}"
            )
        on = rows[(name, True)]
        off = rows[(name, False)]
        lines.append(
            f"{'':18s} saved {off[0] - on[0]} msgs,"
            f" {(off[1] - on[1]) / 1024:.0f} KiB,"
            f" {(off[2] - on[2]) * 1e3:.3f} ms"
        )
    emit_table(benchmark, "ablation_avpg", lines)

    for name, _ in CASES:
        on = rows[(name, True)]
        off = rows[(name, False)]
        assert on[0] < off[0], name  # fewer messages
        assert on[1] < off[1], name  # fewer bytes
        assert on[2] <= off[2] * 1.001, name  # no slower
