"""Section 2.2: contiguous MPI_PUT/MPI_GET use DMA; strided ones use
programmed I/O and are "generally less efficient ... because they
increase communication setup time significantly".

Measures one-sided put cost versus element count for stride 1 (DMA) and
stride 2/4 (PIO), splitting CPU-occupied time from end-to-end time: the
DMA path's CPU cost is flat (descriptor programming), the PIO path's
grows linearly with elements.
"""

import numpy as np
import pytest

from repro.mpi2 import Mpi2Runtime
from repro.mpi2.window import Win
from repro.vbus import build_cluster

from benchmarks.benchutil import emit_table, run_once

COUNTS = (64, 512, 4096)
STRIDES = (1, 2, 4)


def _put_cost(count, stride):
    cluster = build_cluster(2)
    runtime = Mpi2Runtime(cluster)
    comms = [runtime.comm(0), runtime.comm(1)]
    size = count * stride + 8
    wins = Win.create(comms, [np.zeros(size), np.zeros(size)])
    out = {}

    def origin():
        win = wins[0]
        t0 = cluster.sim.now
        yield from win.put(np.ones(count), target=1, offset=0, stride=stride)
        out["cpu"] = cluster.sim.now - t0  # initiation blocks for CPU work
        yield from win.fence()
        out["total"] = cluster.sim.now - t0

    def target():
        yield from wins[1].fence()

    cluster.sim.process(origin(), name="origin")
    cluster.sim.process(target(), name="target")
    cluster.sim.run()
    return out["cpu"], out["total"]


def _measure():
    return {
        (count, stride): _put_cost(count, stride)
        for count in COUNTS
        for stride in STRIDES
    }


def test_put_get_modes(benchmark):
    rows = run_once(benchmark, _measure)
    lines = [
        f"{'elements':>9s} {'stride':>7s} {'mode':>6s} {'CPU(us)':>9s}"
        f" {'total(us)':>10s}",
        "-" * 48,
    ]
    for count in COUNTS:
        for stride in STRIDES:
            cpu, total = rows[(count, stride)]
            mode = "DMA" if stride == 1 else "PIO"
            lines.append(
                f"{count:9d} {stride:7d} {mode:>6s} {cpu * 1e6:9.1f}"
                f" {total * 1e6:10.1f}"
            )
    emit_table(benchmark, "sec2_put_get_modes", lines)

    for count in COUNTS:
        cpu_dma, _ = rows[(count, 1)]
        cpu_pio, _ = rows[(count, 2)]
        # PIO occupies the CPU per element; DMA's CPU cost is flat.
        assert cpu_pio > cpu_dma
    # DMA CPU cost does not grow with size; PIO's grows linearly.
    assert rows[(4096, 1)][0] == pytest.approx(rows[(64, 1)][0], rel=0.01)
    growth = rows[(4096, 2)][0] / rows[(64, 2)][0]
    assert growth > 20
    # End-to-end, big strided puts lose badly to contiguous ones.
    assert rows[(4096, 2)][1] > 2 * rows[(4096, 1)][1]
