"""Section 2.1: SKWP raises link bandwidth ~4x over conventional
pipelining, and untuned wave pipelining degrades with hop count.

Regenerates the link-level comparison behind "SKWP increases the
bandwidth up to four times higher than conventional pipelining":
cycle times and bandwidths of the same physical link under the three
pipelining disciplines, across hop counts (skew magnification).
"""

import pytest

from repro.vbus.params import LinkParams
from repro.vbus.signal import bandwidth_Bps, cycle_time_s

from benchmarks.benchutil import emit_table, run_once

MODES = ("conventional", "wave", "skwp")


def _measure():
    out = {}
    for mode in MODES:
        params = LinkParams(mode=mode)
        for hops in (1, 2, 4, 8):
            out[(mode, hops)] = (
                cycle_time_s(params, hops),
                bandwidth_Bps(params, hops),
            )
    return out


def test_skwp_bandwidth(benchmark):
    rows = run_once(benchmark, _measure)
    lines = [
        f"{'mode':14s} {'hops':>4s} {'cycle(ns)':>10s} {'BW(MB/s)':>10s}",
        "-" * 42,
    ]
    for mode in MODES:
        for hops in (1, 2, 4, 8):
            cyc, bw = rows[(mode, hops)]
            lines.append(
                f"{mode:14s} {hops:4d} {cyc * 1e9:10.2f} {bw / 1e6:10.1f}"
            )
    ratio = rows[("skwp", 1)][1] / rows[("conventional", 1)][1]
    lines.append("")
    lines.append(f"SKWP / conventional bandwidth at 1 hop: {ratio:.2f}x "
                 "(paper: ~4x)")
    emit_table(benchmark, "sec2_skwp_bandwidth", lines)

    assert ratio == pytest.approx(4.0, rel=0.15)
    # Conventional pipelining is hop-independent.
    assert rows[("conventional", 1)][0] == rows[("conventional", 8)][0]
    # Untuned wave pipelining loses bandwidth with distance (skew
    # magnification) and eventually falls below conventional.
    assert rows[("wave", 8)][1] < rows[("wave", 1)][1]
    assert rows[("wave", 8)][1] < rows[("conventional", 8)][1]
    # SKWP resamples per hop: flat across distance.
    assert rows[("skwp", 1)][1] == pytest.approx(rows[("skwp", 8)][1])
