"""Figures 2, 3, 4: LMAD access-movement examples.

Regenerates the memory-access diagrams of the paper's LMAD introduction:

* Fig 2 — ``DO i=1,11,2`` touching ``A(i)``: consistent stride 2;
* Fig 3 — ``DO i=1,4`` touching ``A(i*2-1)``: the "variant" expression
  still yields one consistent stride (2);
* Fig 4 — ``REAL A(14,*)`` under ``DO I=1,2 / DO J=1,2 / DO K=1,10,3``
  touching ``A(K, J+2*(I-1))``: the three-dimensional LMAD
  ``A^{3,14,28}_{9,14,28}+0`` (the paper's printed copy garbles the
  third stride/span as 26; the arithmetic gives 28).
"""

from repro.compiler.analysis.access import LoopCtx, ref_lmad
from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse

from benchmarks.benchutil import emit_table, run_once


def _diagram(offsets, extent):
    cells = ["#" if i in set(offsets) else "." for i in range(extent)]
    return "".join(cells)


def _measure():
    out = {}

    unit2 = lower_program(parse("""
      PROGRAM F2
      REAL*8 A(12)
      DO I = 1, 11, 2
        A(I) = 0.0
      ENDDO
      END
""")).main
    ref2 = unit2.body[0].body[0].lhs
    l2 = ref_lmad(ref2, unit2.symtab, [LoopCtx("I", 1, 11, 2)])
    out["fig2"] = l2

    unit3 = lower_program(parse("""
      PROGRAM F3
      REAL*8 A(8)
      DO I = 1, 4
        A(I*2-1) = 0.0
      ENDDO
      END
""")).main
    ref3 = unit3.body[0].body[0].lhs
    l3 = ref_lmad(ref3, unit3.symtab, [LoopCtx("I", 1, 4, 1)])
    out["fig3"] = l3

    unit4 = lower_program(parse("""
      PROGRAM F4
      REAL*8 A(14,4)
      DO I = 1, 2
        DO J = 1, 2
          DO K = 1, 10, 3
            A(K, J+2*(I-1)) = 0.0
          ENDDO
        ENDDO
      ENDDO
      END
""")).main
    ref4 = unit4.body[0].body[0].body[0].body[0].lhs
    ctxs = [
        LoopCtx("I", 1, 2, 1),
        LoopCtx("J", 1, 2, 1),
        LoopCtx("K", 1, 10, 3),
    ]
    out["fig4"] = ref_lmad(ref4, unit4.symtab, ctxs)
    return out


def test_figures_2_3_4_lmads(benchmark):
    lmads = run_once(benchmark, _measure)
    l2, l3, l4 = lmads["fig2"], lmads["fig3"], lmads["fig4"]

    lines = [
        f"Fig 2  DO i=1,11,2 : A(i)        -> {l2}",
        f"       {_diagram(l2.enumerate(), 12)}",
        f"Fig 3  DO i=1,4    : A(i*2-1)    -> {l3}",
        f"       {_diagram(l3.enumerate(), 8)}",
        f"Fig 4  triple nest : A(K,J+2(I-1)) -> {l4}",
        f"       {_diagram(l4.enumerate(), 56)}",
    ]
    emit_table(benchmark, "fig2_fig3_fig4_lmads", lines)

    assert (l2.dims[0].stride, l2.dims[0].span, l2.base) == (2, 10, 0)
    assert l2.enumerate().tolist() == [0, 2, 4, 6, 8, 10]
    assert (l3.dims[0].stride, l3.dims[0].span) == (2, 6)
    strides = sorted(d.stride for d in l4.dims)
    spans = sorted(d.span for d in l4.dims)
    assert strides == [3, 14, 28] and spans == [9, 14, 28]
    assert l4.base == 0
    assert l4.count_distinct() == 16
