"""Ablation: V-Bus hardware broadcast inside MPI collectives (§2.2's
"we optimize the collective communication ... by making use of the
collective facilities of a V-Bus network card").

Times MPI_Bcast across payload sizes with the hardware bus versus the
binomial software tree on identical mesh hardware, then shows the
end-to-end effect on MM (whose B matrix scatter is one broadcast).
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_source
from repro.mpi2 import Mpi2Runtime
from repro.runtime.executor import run_program
from repro.vbus import build_cluster
from repro.vbus.params import ClusterParams, cluster_for
from repro.workloads import mm

from benchmarks.benchutil import emit_table, run_once

TREE_PARAMS = cluster_for(4, ClusterParams(vbus_broadcast=False))
SIZES = (256, 4096, 65536, 1 << 20)


def _bcast_time(params, nbytes):
    cl = build_cluster(4, params=params)
    rt = Mpi2Runtime(cl)
    done = {}

    def body(rank):
        data = np.zeros(nbytes // 8) if rank == 0 else None
        yield from rt.comm(rank).bcast(data, root=0)
        done[rank] = cl.sim.now

    for r in range(4):
        cl.sim.process(body(r), name=f"r{r}")
    cl.sim.run()
    return max(done.values())


def _measure():
    out = {}
    for nbytes in SIZES:
        out[("hw", nbytes)] = _bcast_time(None, nbytes)
        out[("tree", nbytes)] = _bcast_time(TREE_PARAMS, nbytes)
    prog = compile_source(mm.source(256), nprocs=4, granularity="coarse")
    out[("mm", "hw")] = run_program(prog, execute=False).comm_max_s
    out[("mm", "tree")] = run_program(
        prog, cluster_params=TREE_PARAMS, execute=False
    ).comm_max_s
    return out


def test_ablation_collectives(benchmark):
    rows = run_once(benchmark, _measure)
    lines = [
        f"{'payload(B)':>11s} {'V-Bus(us)':>10s} {'tree(us)':>10s} {'gain':>6s}",
        "-" * 42,
    ]
    for nbytes in SIZES:
        hw = rows[("hw", nbytes)]
        tr = rows[("tree", nbytes)]
        lines.append(
            f"{nbytes:11d} {hw * 1e6:10.1f} {tr * 1e6:10.1f} {tr / hw:6.2f}x"
        )
    lines.append("")
    lines.append(
        f"MM(256) coarse comm: V-Bus {rows[('mm', 'hw')] * 1e3:.3f} ms,"
        f" tree {rows[('mm', 'tree')] * 1e3:.3f} ms"
    )
    emit_table(benchmark, "ablation_collectives", lines)

    for nbytes in SIZES:
        assert rows[("hw", nbytes)] < rows[("tree", nbytes)]
    # The tree pays ~log2(P) serializations: the large-payload gain
    # approaches the tree depth (2 rounds on 4 nodes).
    big_gain = rows[("tree", 1 << 20)] / rows[("hw", 1 << 20)]
    assert big_gain == pytest.approx(2.0, rel=0.25)
    assert rows[("mm", "hw")] <= rows[("mm", "tree")]
