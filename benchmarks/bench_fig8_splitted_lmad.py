"""Figure 8: splitted LMADs — A_offsets x A_mapping.

The paper's example access ``A(K, J+2*(I-1))`` on ``REAL A(14,*)``
splits into A_mapping = the K dimension (stride 3, repeated pattern) and
A_offsets = {x2*14 + x3*28} = {0, 14, 28, 42} (the paper's text prints
"0*14+0*24, 1*14+0*24, ..." with OCR-mangled constants; the arithmetic
on its own example gives multiples of 14 and 28).
"""

from repro.compiler.analysis.lmad import LMAD
from repro.compiler.postpass.split import split_lmad

from benchmarks.benchutil import emit_table, run_once


def _measure():
    lmad = LMAD.from_counts(
        "A", 0, [(3, 4), (14, 2), (28, 2)], ["K", "J", "I"]
    )
    return lmad, split_lmad(lmad)


def test_figure8_splitted_lmad(benchmark):
    lmad, sp = run_once(benchmark, _measure)
    lines = [
        f"LMAD            : {lmad}",
        f"A_mapping       : stride {sp.mapping.stride}, "
        f"span {sp.mapping.span} ({sp.mapping.count} elements)",
        f"A_offsets       : {sorted(sp.offsets)}",
        f"transfers       : {sp.transfers} (one per offset)",
        "mapping -> primitive: stride "
        f"{sp.mapping.stride} > 1 => stride MPI_PUT/MPI_GET",
    ]
    # Show the repeating pattern at each offset.
    for o in sorted(sp.offsets):
        pts = [o + k * sp.mapping.stride for k in range(sp.mapping.count)]
        lines.append(f"  offset {o:3d}: elements {pts}")
    emit_table(benchmark, "fig8_splitted_lmad", lines)

    assert sorted(sp.offsets) == [0, 14, 28, 42]
    assert sp.mapping.stride == 3 and sp.mapping.count == 4
    assert sp.transfers == 4
    # Reassembly covers exactly the original region.
    assert set(sp.reassemble().enumerate()) == set(lmad.enumerate())
