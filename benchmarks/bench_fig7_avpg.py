"""Figure 7: the AVPG with Valid/Propagate/Invalid attributes and the
two redundant-communication eliminations.

The workload (workloads.synthetic.avpg_chain) reproduces the figure's
pattern: array A is Valid at the first loop, Propagates across two
loops, and is Valid again (communication delayed until the next valid
node); array B is Valid then Invalid (its collect is eliminated).  The
benchmark also measures the eliminations' effect on actual message
counts by compiling with live_out analysis on and off.
"""

from repro.compiler.pipeline import compile_source
from repro.runtime.executor import run_program
from repro.workloads import synthetic

from benchmarks.benchutil import emit_table, run_once

N = 4096


def _measure():
    src = synthetic.avpg_chain(N)
    prog = compile_source(
        src, nprocs=4, granularity="fine", live_out=frozenset({"D"})
    )
    base = compile_source(src, nprocs=4, granularity="fine")  # all live

    r_opt = run_program(prog, execute=False)
    r_base = run_program(base, execute=False)
    return prog, r_opt, r_base


def test_figure7_avpg(benchmark):
    prog, r_opt, r_base = run_once(benchmark, _measure)
    g = prog.avpg

    lines = ["AVPG attributes (rows: loop nodes / cols: arrays):"]
    cols = g.arrays
    lines.append("  node   " + " ".join(f"{a:>10s}" for a in cols))
    for node in g.nodes:
        lines.append(
            f"  {node.label:6s} "
            + " ".join(f"{node.attrs[a]:>10s}" for a in cols)
        )
    lines.append("")
    lines.append(f"eliminated edges  : {g.eliminated_edges()}")
    lines.append(f"delayed spans     : {g.delayed_spans()}")
    lines.append("")
    lines.append(
        f"messages with AVPG eliminations : {int(r_opt.hw['messages'])}"
    )
    lines.append(
        f"messages, everything live       : {int(r_base.hw['messages'])}"
    )
    emit_table(benchmark, "fig7_avpg", lines)

    attrs = {a: [n.attrs[a] for n in g.nodes] for a in cols}
    assert attrs["A"] == ["Valid", "Propagate", "Propagate", "Valid"]
    assert attrs["B"] == ["Valid", "Invalid", "Invalid", "Invalid"]
    assert (0, 1, "B") in g.eliminated_edges()
    assert (0, 3, "A") in g.delayed_spans()
    # The eliminations remove real traffic.
    assert r_opt.hw["messages"] < r_base.hw["messages"]
    assert r_opt.hw["bytes"] < r_base.hw["bytes"]
